//! `rcn` — command-line interface to the recoverable-consensus toolkit.
//!
//! ```text
//! rcn types                          list the type catalogue
//! rcn classify <type> [--cap N]      consensus + recoverable consensus numbers
//! rcn witness <type> <n> [discerning|recording]
//!                                    find a witness and explain it
//! rcn dot <type> [--self-loops]      Graphviz state machine (Figure 3 style)
//! rcn table <type>                   transition table as text
//! rcn solve <type> <inputs…>         build + exhaustively verify a
//!                                    recoverable consensus protocol
//! rcn simulate-tnn <n> <n'> <inputs…> model-check the paper's §4 algorithm
//! rcn lint [<type>…|--all]           run the static analyzer (rcn-analyze)
//! rcn crashtest <protocol>           enumerate every crash placement within
//!                                    a budget; shrink + replay counterexamples
//! rcn check <protocol>…              independent BFS model checker (second
//!                                    opinion on crashtest + valency verdicts)
//! rcn profile <trace.jsonl>          per-span time breakdown of a --trace file
//! ```
//!
//! The search and fault commands accept `--trace PATH` (record a JSONL
//! trace; refuses to overwrite without `--force`) and `--metrics` (print
//! the metrics registry, as text or `--json`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod types;

use rcn_decide::{
    explain_discerning, explain_recording, BenchRecord, BenchRecorder, DiskCache, SearchEngine,
};
use rcn_obs::{parse_jsonl, ProfileReport, Tracer};
use rcn_protocols::TnnRecoverable;
use rcn_spec::dot::{to_dot, to_table_text};
use rcn_valency::check_consensus;
use std::process::ExitCode;
use std::time::Duration;
use types::{parse_type, CATALOGUE};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("run `rcn help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut args = args.iter().map(String::as_str);
    match args.next() {
        None | Some("help" | "--help" | "-h") => {
            print_help();
            Ok(())
        }
        Some("types") => {
            cmd_types();
            Ok(())
        }
        Some("classify") => cmd_classify(&args.collect::<Vec<_>>()),
        Some("compare") => cmd_compare(&args.collect::<Vec<_>>()),
        Some("witness") => cmd_witness(&args.collect::<Vec<_>>()),
        Some("dot") => cmd_dot(&args.collect::<Vec<_>>()),
        Some("table") => cmd_table(&args.collect::<Vec<_>>()),
        Some("solve") => cmd_solve(&args.collect::<Vec<_>>()),
        Some("simulate-tnn") => cmd_simulate_tnn(&args.collect::<Vec<_>>()),
        Some("lint") => cmd_lint(&args.collect::<Vec<_>>()),
        Some("crashtest") => cmd_crashtest(&args.collect::<Vec<_>>()),
        Some("check") => cmd_check(&args.collect::<Vec<_>>()),
        Some("profile") => cmd_profile(&args.collect::<Vec<_>>()),
        Some(other) => Err(format!("unknown command `{other}`")),
    }
}

fn print_help() {
    println!("rcn — determining recoverable consensus numbers (Ovens, PODC 2024)");
    println!();
    println!("commands:");
    println!("  types                               list the type catalogue");
    println!("  classify <type> [--cap N]           CN and RCN of a type (default cap 4)");
    println!("  compare <type>… [--cap N]           hierarchy table over several types");
    println!("  witness <type> <n> [kind]           find + explain a discerning/recording witness");
    println!();
    println!("search options (classify, compare, witness; `--flag value` or `--flag=value`):");
    println!(
        "  --threads N                         search worker threads (0 = all cores, default 1)"
    );
    println!("  --cache-dir DIR                     persist analyses under DIR and reuse them on later runs");
    println!("  --no-cache                          ignore --cache-dir (search without the persistent cache)");
    println!("  --stats                             print search statistics (analyses, cache/disk hits, wall time)");
    println!("  --timeout SECS                      wall-clock deadline; partial results are reported as ≥N lower bounds");
    println!("  --bench-json PATH                   (classify) write a machine-readable BENCH record of the run to PATH");
    println!();
    println!("observability (classify, compare, witness, lint, crashtest, check):");
    println!("  --trace PATH                        record a JSONL span/event trace to PATH");
    println!("                                      (refuses an existing file without --force)");
    println!("  --metrics                           print the metrics registry after the run");
    println!("  --json                              render --metrics (and lint/crashtest output) as JSON");
    println!();
    println!("  dot <type> [--self-loops]           Graphviz state machine");
    println!("  table <type>                        transition table");
    println!("  solve <type> <input>…               build + verify recoverable consensus");
    println!("  simulate-tnn <n> <n'> <input>…      model-check the §4 recoverable algorithm");
    println!("  lint [<type>…|--all] [--json]       run the static analyzer over types (and,");
    println!("       [--deny warnings]              with --all, the shipped protocols)");
    println!("  crashtest <protocol> [--crashes K]  enumerate every crash placement within the");
    println!("       [--depth D] [--max-states N]   budget (K crashes/process, schedules up to D");
    println!("       [--inputs 0,1] [--shrink]      events); counterexamples are optionally");
    println!("       [--json] [--explore-threads T] shrunk to 1-minimal and replayed through the");
    println!("       [--memo-dir DIR] [--no-memo]   threaded runtime; exits nonzero on violation.");
    println!("       [--timeout SECS]               T>1 shards the search (T=0: all cores) with a");
    println!(
        "       [--bench-json PATH]            bit-identical verdict; --memo-dir persists the"
    );
    println!("       [--fault-model M]              verdict + memo so repeated runs resume;");
    println!(
        "                                      M = per-process (default) | system | mid-op | all"
    );
    println!();
    println!("  check <protocol>… [--crashes K]     independent breadth-first model checker:");
    println!("       [--depth D] [--max-states N]   re-derives crashtest verdicts (with");
    println!("       [--inputs 0,1] [--valency]     minimal-depth counterexamples) and, with");
    println!("       [--z Z] [--clamp C] [--json]   --valency, the initial configuration's");
    println!("       [--bench-json PATH]            valency; exits nonzero on violation;");
    println!(
        "       [--fault-model M]              M = per-process (default) | system | mid-op | all"
    );
    println!();
    println!("  crashtest/check protocols: tas | tnn-wait-free[:n,n'] | tnn-recoverable[:n,n']");
    println!("                             | tournament[:type]");
    println!();
    println!("  profile <trace.jsonl> [--json]      per-span time breakdown (self vs children,");
    println!("                                      call counts, p50/p99) of a --trace file");
}

/// Prints the type catalogue with per-type readability and size columns
/// (parameterized entries are instantiated at their defaults).
fn cmd_types() {
    println!(
        "{:<18} {:<8} {:>6} {:>4} {:>6}  description",
        "expression", "readable", "values", "ops", "resps"
    );
    for (expr, desc) in CATALOGUE {
        let base = expr.split([':', '+']).next().unwrap_or(expr);
        match parse_type(base) {
            Ok(ty) => println!(
                "{expr:<18} {:<8} {:>6} {:>4} {:>6}  {desc}",
                if ty.is_readable() { "yes" } else { "no" },
                ty.num_values(),
                ty.num_ops(),
                ty.num_responses()
            ),
            Err(_) => println!(
                "{expr:<18} {:<8} {:>6} {:>4} {:>6}  {desc}",
                "-", "-", "-", "-"
            ),
        }
    }
}

/// Flags taking a value shared by the search commands (`classify`,
/// `compare`, `witness`); `--cap` is appended where it applies.
const SEARCH_VALUE_FLAGS: &[&str] = &["--threads", "--cache-dir", "--timeout", "--trace"];
/// Valueless switches shared by the search commands.
const SEARCH_SWITCH_FLAGS: &[&str] = &["--stats", "--no-cache", "--metrics", "--force", "--json"];

/// Command arguments split against an explicit per-command flag catalogue.
///
/// Every `--` token must name a declared flag — unknown flags, a value
/// flag without a value, and a switch given an inline `=value` are all
/// usage errors, so a typed flag is never silently dropped (`--cap=6`
/// previously ran at the default cap with no diagnostic).
struct Parsed<'a> {
    positionals: Vec<&'a str>,
    values: Vec<(&'static str, &'a str)>,
    switches: Vec<&'static str>,
}

impl<'a> Parsed<'a> {
    /// The value of `flag`, if given (last occurrence wins).
    fn value(&self, flag: &str) -> Option<&'a str> {
        self.values
            .iter()
            .rev()
            .find(|(f, _)| *f == flag)
            .map(|&(_, v)| v)
    }

    /// Whether the switch `flag` was given.
    fn has(&self, flag: &str) -> bool {
        self.switches.contains(&flag)
    }
}

/// Splits `args` into positionals and the flags the command declares,
/// accepting both `--flag value` and `--flag=value` spellings.
fn parse_args<'a>(
    args: &[&'a str],
    value_flags: &[&'static str],
    switch_flags: &[&'static str],
) -> Result<Parsed<'a>, String> {
    let mut parsed = Parsed {
        positionals: Vec::new(),
        values: Vec::new(),
        switches: Vec::new(),
    };
    let mut iter = args.iter().copied();
    while let Some(tok) = iter.next() {
        let Some(body) = tok.strip_prefix("--") else {
            parsed.positionals.push(tok);
            continue;
        };
        let (name, inline) = match body.split_once('=') {
            Some((n, v)) => (n, Some(v)),
            None => (body, None),
        };
        if let Some(&flag) = value_flags.iter().find(|f| f[2..] == *name) {
            let value = match inline {
                Some(v) => v,
                None => iter
                    .next()
                    .ok_or_else(|| format!("missing value for `{flag}`"))?,
            };
            parsed.values.push((flag, value));
        } else if let Some(&flag) = switch_flags.iter().find(|f| f[2..] == *name) {
            if inline.is_some() {
                return Err(format!("`{flag}` does not take a value"));
            }
            parsed.switches.push(flag);
        } else {
            return Err(format!("unknown flag `--{name}`"));
        }
    }
    Ok(parsed)
}

/// Parses `--cap` (default 4) and applies the shared lower-bound guard:
/// a cap below 2 would make the level scan vacuous and misreport level 1
/// as an uncapped result.
fn cap_from_args(parsed: &Parsed) -> Result<usize, String> {
    let cap: usize = parsed
        .value("--cap")
        .map(|v| v.parse().map_err(|_| "cap must be a number"))
        .transpose()?
        .unwrap_or(4);
    if cap < 2 {
        return Err("cap must be at least 2".into());
    }
    Ok(cap)
}

/// Builds the search engine from `--threads` (default: 1 worker, i.e. the
/// plain sequential search; 0 = one worker per core), the persistent
/// cache flags (`--cache-dir DIR` attaches a [`DiskCache`] rooted at
/// `DIR`; `--no-cache` wins over it), and `--timeout SECS` (a wall-clock
/// deadline per search call; results past it are honest lower bounds).
fn engine_from_args(parsed: &Parsed) -> Result<SearchEngine, String> {
    let threads: usize = parsed
        .value("--threads")
        .map(|v| v.parse().map_err(|_| "threads must be a number"))
        .transpose()?
        .unwrap_or(1);
    let mut engine = SearchEngine::new(threads);
    if !parsed.has("--no-cache") {
        if let Some(dir) = parsed.value("--cache-dir") {
            engine = engine.with_disk_cache(DiskCache::new(dir));
        }
    }
    if let Some(v) = parsed.value("--timeout") {
        let secs: f64 = v
            .parse()
            .map_err(|_| "timeout must be a number of seconds")?;
        if secs <= 0.0 || !secs.is_finite() {
            return Err("timeout must be a positive number of seconds".into());
        }
        engine = engine.with_timeout(Duration::from_secs_f64(secs));
    }
    Ok(engine)
}

/// A deadline that fires mid-search leaves the reported levels honest but
/// partial — say so where the user can see it.
fn warn_if_timed_out(engine: &SearchEngine) {
    let stats = engine.stats();
    if stats.timed_out {
        eprintln!(
            "warning: --timeout deadline hit; levels shown as ≥N are lower bounds \
             ({} instance(s) abandoned)",
            stats.instances_abandoned
        );
    }
}

fn maybe_print_stats(parsed: &Parsed, engine: &SearchEngine) {
    if parsed.has("--stats") {
        let n = engine.threads();
        println!(
            "search stats        : {} ({n} thread{})",
            engine.stats(),
            if n == 1 { "" } else { "s" }
        );
    }
}

/// Builds the run's tracer from `--trace PATH` / `--metrics` / `--force`:
/// a JSONL tracer when `--trace` is given (refusing to overwrite an
/// existing file unless `--force` is also passed), a metrics-only tracer
/// for bare `--metrics`, and the zero-cost disabled tracer otherwise.
fn tracer_from_args(parsed: &Parsed) -> Result<Tracer, String> {
    if let Some(path) = parsed.value("--trace") {
        let target = std::path::Path::new(path);
        if target.exists() && !parsed.has("--force") {
            return Err(format!(
                "trace file `{path}` already exists; pass --force to overwrite it"
            ));
        }
        Tracer::to_jsonl(target).map_err(|e| format!("cannot open trace file {path}: {e}"))
    } else if parsed.has("--metrics") {
        Ok(Tracer::metrics_only())
    } else {
        Ok(Tracer::disabled())
    }
}

/// Flushes a `--trace` sink to disk and says where it went (text mode
/// only — a `--json` command's stdout stays one JSON document).
fn flush_trace(parsed: &Parsed, tracer: &Tracer) -> Result<(), String> {
    if let Some(path) = parsed.value("--trace") {
        tracer
            .flush()
            .map_err(|e| format!("flushing trace to {path}: {e}"))?;
        if !parsed.has("--json") {
            println!("trace               : {path}");
        }
    }
    Ok(())
}

/// Finishes the observability side of a run: flushes the JSONL trace (and
/// says where it went) and renders the metrics registry when `--metrics`
/// was asked for — aligned text by default, one JSON object with `--json`.
/// Commands that embed the snapshot in their own JSON document call
/// [`flush_trace`] instead.
fn finish_tracing(parsed: &Parsed, tracer: &Tracer) -> Result<(), String> {
    flush_trace(parsed, tracer)?;
    if parsed.has("--metrics") {
        if let Some(snapshot) = tracer.snapshot() {
            if parsed.has("--json") {
                println!("{}", snapshot.to_json());
            } else {
                print!("{}", snapshot.render_text());
            }
        }
    }
    Ok(())
}

fn cmd_classify(args: &[&str]) -> Result<(), String> {
    let parsed = parse_args(
        args,
        &[
            "--cap",
            "--threads",
            "--cache-dir",
            "--timeout",
            "--bench-json",
            "--trace",
        ],
        SEARCH_SWITCH_FLAGS,
    )?;
    let [spec] = parsed.positionals[..] else {
        return Err("usage: rcn classify <type> [--cap N] [--threads N] [--stats]".into());
    };
    let cap = cap_from_args(&parsed)?;
    let ty = parse_type(spec).map_err(|e| e.to_string())?;
    let tracer = tracer_from_args(&parsed)?;
    let engine = engine_from_args(&parsed)?.with_tracer(tracer.clone());
    let c = engine.classify(&*ty, cap).map_err(|e| e.to_string())?;
    if parsed.has("--json") {
        // One JSON document on stdout: the full classification, with the
        // metrics snapshot embedded under "metrics" when asked for.
        let mut doc =
            serde_json::to_string(&c).map_err(|e| format!("serializing classification: {e}"))?;
        if parsed.has("--metrics") {
            if let Some(snapshot) = tracer.snapshot() {
                doc.truncate(doc.len() - 1); // reopen the object
                doc.push_str(", \"metrics\": ");
                doc.push_str(&snapshot.to_json());
                doc.push('}');
            }
        }
        println!("{doc}");
    } else {
        println!("type                : {}", c.type_name);
        println!("readable            : {}", c.readable);
        println!("discerning number   : {}", c.discerning.display_level());
        println!("recording number    : {}", c.recording.display_level());
        println!("consensus number    : {}", c.consensus_number);
        println!("recoverable CN      : {}", c.recoverable_consensus_number);
        if let Some(w) = &c.discerning.witness {
            println!("discerning witness  : {}", w.describe(&*ty));
        }
        if let Some(w) = &c.recording.witness {
            println!("recording witness   : {}", w.describe(&*ty));
        }
        maybe_print_stats(&parsed, &engine);
    }
    warn_if_timed_out(&engine);
    if let Some(path) = parsed.value("--bench-json") {
        let mut recorder = BenchRecorder::new(format!("classify_{spec}"));
        recorder.record(BenchRecord::from_engine(
            format!("classify/{spec}/cap={cap}"),
            &engine,
        ));
        recorder
            .write_to(std::path::Path::new(path))
            .map_err(|e| format!("writing bench json to {path}: {e}"))?;
        if parsed.has("--json") {
            eprintln!("bench json          : {path}");
        } else {
            println!("bench json          : {path}");
        }
    }
    if parsed.has("--json") {
        flush_trace(&parsed, &tracer)
    } else {
        finish_tracing(&parsed, &tracer)
    }
}

fn cmd_compare(args: &[&str]) -> Result<(), String> {
    let parsed = parse_args(
        args,
        &["--cap", "--threads", "--cache-dir", "--timeout", "--trace"],
        SEARCH_SWITCH_FLAGS,
    )?;
    let cap = cap_from_args(&parsed)?;
    if parsed.positionals.is_empty() {
        return Err("usage: rcn compare <type>… [--cap N] [--threads N] [--stats]".into());
    }
    let types = parsed
        .positionals
        .iter()
        .map(|spec| parse_type(spec).map_err(|e| e.to_string()))
        .collect::<Result<Vec<_>, _>>()?;
    let tracer = tracer_from_args(&parsed)?;
    let engine = engine_from_args(&parsed)?.with_tracer(tracer.clone());
    let mut report = rcn_core::HierarchyReport::new(cap);
    report.add_all(&types, &engine).map_err(|e| e.to_string())?;
    println!("{report}");
    maybe_print_stats(&parsed, &engine);
    warn_if_timed_out(&engine);
    finish_tracing(&parsed, &tracer)
}

fn cmd_witness(args: &[&str]) -> Result<(), String> {
    let parsed = parse_args(args, SEARCH_VALUE_FLAGS, SEARCH_SWITCH_FLAGS)?;
    let mut pos = parsed.positionals.iter().copied();
    let spec = pos.next().ok_or("usage: rcn witness <type> <n> [kind]")?;
    let n: usize = pos
        .next()
        .ok_or("usage: rcn witness <type> <n> [kind]")?
        .parse()
        .map_err(|_| "n must be a number ≥ 2")?;
    let kind = pos.next().unwrap_or("recording");
    let ty = parse_type(spec).map_err(|e| e.to_string())?;
    let tracer = tracer_from_args(&parsed)?;
    let engine = engine_from_args(&parsed)?.with_tracer(tracer.clone());
    match kind {
        "discerning" => match engine
            .find_discerning_witness(&*ty, n)
            .map_err(|e| e.to_string())?
        {
            Some(w) => print!("{}", explain_discerning(&*ty, &w)),
            None if engine.stats().timed_out => {
                println!("search timed out before finding a {n}-discerning witness — inconclusive");
            }
            None => println!("{} is NOT {n}-discerning (no witness exists)", ty.name()),
        },
        "recording" => match engine
            .find_recording_witness(&*ty, n)
            .map_err(|e| e.to_string())?
        {
            Some(w) => print!("{}", explain_recording(&*ty, &w)),
            None if engine.stats().timed_out => {
                println!("search timed out before finding a {n}-recording witness — inconclusive");
            }
            None => println!("{} is NOT {n}-recording (no witness exists)", ty.name()),
        },
        other => {
            return Err(format!(
                "kind must be `discerning` or `recording`, got `{other}`"
            ))
        }
    }
    maybe_print_stats(&parsed, &engine);
    finish_tracing(&parsed, &tracer)
}

fn cmd_dot(args: &[&str]) -> Result<(), String> {
    let parsed = parse_args(args, &[], &["--self-loops"])?;
    let [spec] = parsed.positionals[..] else {
        return Err("usage: rcn dot <type> [--self-loops]".into());
    };
    let ty = parse_type(spec).map_err(|e| e.to_string())?;
    print!("{}", to_dot(&*ty, parsed.has("--self-loops")));
    Ok(())
}

fn cmd_table(args: &[&str]) -> Result<(), String> {
    let parsed = parse_args(args, &[], &[])?;
    let [spec] = parsed.positionals[..] else {
        return Err("usage: rcn table <type>".into());
    };
    let ty = parse_type(spec).map_err(|e| e.to_string())?;
    println!("{}", to_table_text(&*ty));
    Ok(())
}

fn parse_inputs_slice(items: &[&str]) -> Result<Vec<u32>, String> {
    let inputs: Result<Vec<u32>, _> = items.iter().map(|s| s.parse::<u32>()).collect();
    let inputs = inputs.map_err(|_| "inputs must be 0/1".to_string())?;
    if inputs.len() < 2 {
        return Err("need at least 2 inputs".into());
    }
    if inputs.iter().any(|&x| x > 1) {
        return Err("inputs must be binary (0 or 1)".into());
    }
    Ok(inputs)
}

fn cmd_solve(args: &[&str]) -> Result<(), String> {
    let parsed = parse_args(args, &[], &[])?;
    let (spec, rest) = parsed
        .positionals
        .split_first()
        .ok_or("usage: rcn solve <type> <input>…")?;
    let inputs = parse_inputs_slice(rest)?;
    let ty = parse_type(spec).map_err(|e| e.to_string())?;
    let sys = rcn_core::solve_recoverable(ty, inputs).map_err(|e| e.to_string())?;
    println!(
        "built {} over {} shared objects",
        sys.program().name(),
        sys.layout().len()
    );
    let report = check_consensus(&sys, 50_000_000).map_err(|e| e.to_string())?;
    println!(
        "exhaustive verification ({} configurations): {}",
        report.configs, report.verdict
    );
    if report.verdict.is_correct() {
        Ok(())
    } else {
        Err("verification failed".into())
    }
}

fn cmd_simulate_tnn(args: &[&str]) -> Result<(), String> {
    let pos = parse_args(args, &[], &[])?.positionals;
    if pos.len() < 3 {
        return Err("usage: rcn simulate-tnn <n> <n'> <input>…".into());
    }
    let n: usize = pos[0].parse().map_err(|_| "n must be a number")?;
    let n_prime: usize = pos[1].parse().map_err(|_| "n' must be a number")?;
    let inputs = parse_inputs_slice(&pos[2..])?;
    let procs = inputs.len();
    let sys = TnnRecoverable::system(n, n_prime, inputs);
    let report = check_consensus(&sys, 50_000_000).map_err(|e| e.to_string())?;
    println!(
        "T_({n},{n_prime}) recoverable algorithm, {procs} processes: {} ({} configurations)",
        report.verdict, report.configs
    );
    if procs <= n_prime {
        println!("(≤ n' processes: the paper's Lemma 16 says this must be correct)");
    } else {
        println!("(> n' processes: Lemma 16 says a violation must exist)");
    }
    Ok(())
}

/// The default type expressions `rcn lint --all` covers: every catalogue
/// entry instantiated at its defaults.
const LINT_ALL_TYPES: &[&str] = &[
    "register",
    "tas",
    "faa",
    "swap",
    "cas",
    "sticky",
    "consensus",
    "mconsensus",
    "queue",
    "stack",
    "tnn",
    "team-counter",
    "xn",
    "tas+read",
];

fn cmd_lint(args: &[&str]) -> Result<(), String> {
    use rcn_analyze::{ExploreConfig, Registry, Report};

    let parsed = parse_args(
        args,
        &["--deny", "--trace"],
        &["--json", "--all", "--stats", "--metrics", "--force"],
    )?;
    let json = parsed.has("--json");
    let started = std::time::Instant::now();
    let deny_warnings = match parsed.value("--deny") {
        None => false,
        Some("warnings") => true,
        Some(other) => return Err(format!("unknown --deny level `{other}` (try `warnings`)")),
    };
    let all = parsed.has("--all");
    let specs: Vec<&str> = if all {
        LINT_ALL_TYPES.to_vec()
    } else {
        parsed.positionals.clone()
    };
    if specs.is_empty() {
        return Err("usage: rcn lint [<type>…|--all] [--json] [--deny warnings]".into());
    }

    let tracer = tracer_from_args(&parsed)?;
    let registry = Registry::with_defaults();
    let mut combined = Report::new();
    for spec in &specs {
        // `table:FILE` is loaded *without* up-front validation here: letting
        // the linter itself report closedness holes (RCN001) on a hand-edited
        // table is the point of linting it. Other commands keep the strict
        // `parse_type` path.
        let ty: types::DynType = if let Some(path) = spec.strip_prefix("table:") {
            let json =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let table: rcn_spec::TableType = serde_json::from_str(&json)
                .map_err(|e| format!("bad table JSON in {path}: {e}"))?;
            std::sync::Arc::new(table)
        } else {
            parse_type(spec).map_err(|e| e.to_string())?
        };
        combined.merge(registry.lint_type_traced(&*ty, &tracer));
    }
    if all {
        // The shipped recoverable protocols ride along with --all: the §4
        // T_{n,n'} algorithm and the tournament over a sticky bit.
        let cfg = ExploreConfig::default();
        let sys = TnnRecoverable::system(5, 2, vec![0, 1]);
        combined.merge(registry.lint_system_traced(&sys, &cfg, &tracer));
        let sticky: types::DynType = std::sync::Arc::new(rcn_spec::zoo::StickyBit::new());
        let sys = rcn_core::solve_recoverable(sticky, vec![1, 0, 1]).map_err(|e| e.to_string())?;
        combined.merge(registry.lint_system_traced(&sys, &cfg, &tracer));
    }
    combined.finish();

    if json {
        // With --metrics the one stdout document wraps the report so the
        // snapshot can ride along (the same convention as crashtest).
        match (parsed.has("--metrics"), tracer.snapshot()) {
            (true, Some(snapshot)) => println!(
                "{{\"report\": {}, \"metrics\": {}}}",
                combined.render_json(),
                snapshot.to_json()
            ),
            _ => println!("{}", combined.render_json()),
        }
    } else {
        print!("{}", combined.render_text());
    }
    flush_trace(&parsed, &tracer)?;
    if parsed.has("--metrics") && !json {
        if let Some(snapshot) = tracer.snapshot() {
            print!("{}", snapshot.render_text());
        }
    }
    if parsed.has("--stats") {
        let line = format!(
            "lint stats          : {} type(s){} linted, {} error(s), {} warning(s) in {:.3}s",
            specs.len(),
            if all { " + 2 system(s)" } else { "" },
            combined.errors(),
            combined.warnings(),
            started.elapsed().as_secs_f64()
        );
        if json {
            // Keep stdout a single JSON document.
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    }
    if combined.should_fail(deny_warnings) {
        Err(format!(
            "lint failed: {} error(s), {} warning(s)",
            combined.errors(),
            combined.warnings()
        ))
    } else {
        Ok(())
    }
}

/// Builds the protocol system a `crashtest` spec names. Specs mirror the
/// type catalogue's `name[:params]` shape:
///
/// * `tas` — Golab's test&set consensus (the paper's motivating example);
/// * `tnn-wait-free[:n,n']` — the wait-free `T_{n,n'}` protocol (default
///   `2,1`, whose ⊥-divergence under a crash the explorer rediscovers);
/// * `tnn-recoverable[:n,n']` — the paper's §4 algorithm (default `5,2`);
/// * `tournament[:type]` — the tournament construction over a readable
///   type (default `sticky`).
fn build_protocol(
    spec: &str,
    inputs: Option<Vec<u32>>,
) -> Result<(String, rcn_model::System), String> {
    use rcn_protocols::{TasConsensus, TnnWaitFree, TournamentConsensus};

    let (name, params) = match spec.split_once(':') {
        Some((n, p)) => (n, Some(p)),
        None => (spec, None),
    };
    let parse_pair = |params: Option<&str>, default: (usize, usize)| -> Result<_, String> {
        let Some(p) = params else { return Ok(default) };
        let (n, n_prime) = p
            .split_once(',')
            .ok_or_else(|| format!("expected `{name}:n,n'`, got `{spec}`"))?;
        let n = n.parse().map_err(|_| "n must be a number".to_string())?;
        let n_prime = n_prime
            .parse()
            .map_err(|_| "n' must be a number".to_string())?;
        Ok((n, n_prime))
    };
    let inputs = inputs.unwrap_or_else(|| vec![0, 1]);
    let label = format!("{spec} (inputs {inputs:?})");
    let sys = match name {
        "tas" => {
            if params.is_some() {
                return Err(format!("`tas` takes no parameters, got `{spec}`"));
            }
            TasConsensus::system(inputs)
        }
        "tnn-wait-free" => {
            let (n, n_prime) = parse_pair(params, (2, 1))?;
            TnnWaitFree::system(n, n_prime, inputs)
        }
        "tnn-recoverable" => {
            let (n, n_prime) = parse_pair(params, (5, 2))?;
            TnnRecoverable::system(n, n_prime, inputs)
        }
        "tournament" => {
            let ty = parse_type(params.unwrap_or("sticky")).map_err(|e| e.to_string())?;
            TournamentConsensus::try_new(ty, inputs).map_err(|e| e.to_string())?
        }
        other => {
            return Err(format!(
                "unknown protocol `{other}` (try tas, tnn-wait-free[:n,n'], \
                 tnn-recoverable[:n,n'], tournament[:type])"
            ))
        }
    };
    Ok((label, sys))
}

/// Minimal JSON string escaping for the hand-rendered `--json` output.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn cmd_crashtest(args: &[&str]) -> Result<(), String> {
    use rcn_faults::{
        replay_traced, shrink_counterexample_traced, CrashExplorer, CrashtestConfig, ExplorerMemo,
    };

    let parsed = parse_args(
        args,
        &[
            "--crashes",
            "--depth",
            "--max-states",
            "--fault-model",
            "--inputs",
            "--explore-threads",
            "--memo-dir",
            "--timeout",
            "--bench-json",
            "--trace",
        ],
        &[
            "--shrink",
            "--no-memo",
            "--json",
            "--stats",
            "--metrics",
            "--force",
        ],
    )?;
    let [spec] = parsed.positionals[..] else {
        return Err(
            "usage: rcn crashtest <protocol> [--crashes K] [--depth D] [--max-states N] \
             [--fault-model per-process|system|mid-op|all] [--inputs 0,1] \
             [--explore-threads N] [--memo-dir DIR] [--no-memo] \
             [--timeout SECS] [--shrink] [--json] [--stats] [--trace PATH] [--metrics] \
             [--bench-json PATH]"
                .into(),
        );
    };
    let mut config = CrashtestConfig::default();
    if let Some(v) = parsed.value("--crashes") {
        config.max_crashes = v.parse().map_err(|_| "crashes must be a number")?;
    }
    if let Some(v) = parsed.value("--depth") {
        config.max_depth = v.parse().map_err(|_| "depth must be a number")?;
        if config.max_depth == 0 {
            return Err("depth must be at least 1".into());
        }
    }
    if let Some(v) = parsed.value("--max-states") {
        config.max_states = v.parse().map_err(|_| "max-states must be a number")?;
        if config.max_states == 0 {
            return Err("max-states must be at least 1".into());
        }
    }
    if let Some(v) = parsed.value("--fault-model") {
        config.fault_model = v.parse().map_err(|e| format!("{e}"))?;
    }
    let threads: usize = match parsed.value("--explore-threads") {
        // 0 = all cores, mirroring the search commands' --threads.
        Some("0") => std::thread::available_parallelism().map_or(1, |n| n.get()),
        Some(v) => v.parse().map_err(|_| "explore-threads must be a number")?,
        None => 1,
    };
    let inputs = parsed
        .value("--inputs")
        .map(|v| parse_inputs_slice(&v.split(',').collect::<Vec<_>>()))
        .transpose()?;
    let (label, sys) = build_protocol(spec, inputs)?;
    // The crash budget of zero is legal but worth flagging: the run is a
    // crash-free exploration, not a crash-robustness certificate.
    let crash_free = config.max_crashes == 0;

    let tracer = tracer_from_args(&parsed)?;
    let bench_path = parsed.value("--bench-json");
    // Bench records want clean per-run `crashtest.*` counters; when the
    // shared tracer is not already recording, the run gets its own registry.
    let run_tracer = if bench_path.is_some() && !tracer.recording() {
        Tracer::metrics_only()
    } else {
        tracer.clone()
    };
    let mut explorer = CrashExplorer::new(&sys, config)
        .with_tracer(run_tracer.clone())
        .with_threads(threads);
    if let Some(v) = parsed.value("--timeout") {
        let secs: f64 = v
            .parse()
            .map_err(|_| "timeout must be a number of seconds")?;
        if !(secs > 0.0 && secs.is_finite()) {
            return Err("timeout must be a positive number of seconds".into());
        }
        explorer = explorer.with_timeout(std::time::Duration::from_secs_f64(secs));
    }
    // `--no-memo` wins over `--memo-dir`, like `--no-cache`/`--cache-dir`.
    if let Some(dir) = parsed.value("--memo-dir") {
        if !parsed.has("--no-memo") {
            explorer = explorer.with_memo(ExplorerMemo::new(dir));
        }
    }
    let started = std::time::Instant::now();
    let report = explorer.explore();
    let shrunk = report.counterexample.as_ref().map(|cex| {
        let minimal = if parsed.has("--shrink") {
            shrink_counterexample_traced(&sys, cex, &run_tracer)
        } else {
            cex.clone()
        };
        // Counterexamples are never reported on the abstract executor's
        // word alone: the schedule must reproduce end-to-end through the
        // threaded runtime too.
        let replayed = replay_traced(&sys, &minimal.schedule, &run_tracer);
        (minimal, replayed)
    });
    let wall = started.elapsed();

    if let Some(_path) = bench_path {
        let mut recorder = BenchRecorder::new("crashtest");
        // The fault model joins the record name only when it is not the
        // default, so historical `crashtest/...` series stay comparable.
        let model_suffix = if config.fault_model == rcn_model::FaultModel::default() {
            String::new()
        } else {
            format!(",model={}", config.fault_model)
        };
        let mut record = BenchRecord::from_timing(
            format!(
                "crashtest/{spec}/crashes={},depth={}{model_suffix}",
                config.max_crashes, config.max_depth
            ),
            threads,
            wall.as_secs_f64(),
            report.stats.states_visited,
        );
        if let Some(snapshot) = run_tracer.snapshot() {
            record.metrics = snapshot;
        }
        recorder.record(record);
        let path = bench_path.unwrap();
        recorder
            .write_to(std::path::Path::new(path))
            .map_err(|e| format!("writing bench records to {path}: {e}"))?;
        if !parsed.has("--json") {
            println!("bench records       : {path}");
        }
    }

    if parsed.has("--json") {
        let mut fields = vec![
            format!("\"protocol\": {}", json_str(spec)),
            format!("\"crashes\": {}", config.max_crashes),
            format!("\"crash_free\": {crash_free}"),
            format!("\"depth\": {}", config.max_depth),
            format!(
                "\"fault_model\": {}",
                json_str(&config.fault_model.to_string())
            ),
            format!("\"threads\": {threads}"),
            format!("\"states_visited\": {}", report.stats.states_visited),
            format!("\"events_applied\": {}", report.stats.events_applied),
            format!("\"resumed_states\": {}", report.stats.resumed_states),
            format!("\"exhaustive\": {}", report.stats.exhaustive()),
            format!("\"clean\": {}", report.counterexample.is_none()),
        ];
        if let Some((cex, replayed)) = &shrunk {
            fields.push(format!(
                "\"schedule\": {}",
                json_str(&cex.schedule.to_string())
            ));
            fields.push(format!(
                "\"violation\": {}",
                json_str(&cex.violation.to_string())
            ));
            if let Some(d) = &cex.divergence {
                fields.push(format!("\"divergence\": {}", json_str(&d.to_string())));
            }
            fields.push(format!("\"shrunk\": {}", parsed.has("--shrink")));
            fields.push(format!("\"replay_confirmed\": {}", replayed.confirmed()));
        }
        if parsed.has("--stats") {
            fields.push(format!("\"wall_seconds\": {}", wall.as_secs_f64()));
        }
        if parsed.has("--metrics") {
            if let Some(snapshot) = run_tracer.snapshot() {
                fields.push(format!("\"metrics\": {}", snapshot.to_json()));
            }
        }
        println!("{{{}}}", fields.join(", "));
    } else {
        println!("protocol            : {label}");
        println!(
            "crash budget        : ≤{} crash(es) per process, schedules ≤{} events{}",
            config.max_crashes,
            config.max_depth,
            if crash_free {
                " (crash-free exploration: no crash robustness is being tested)"
            } else {
                ""
            }
        );
        println!("fault model         : {}", config.fault_model);
        if threads > 1 {
            println!("explore threads     : {threads}");
        }
        println!("explored            : {}", report.stats);
        if parsed.has("--stats") {
            println!(
                "crashtest stats     : {} in {:.3}s{}{}",
                report.stats,
                wall.as_secs_f64(),
                if report.stats.depth_limited {
                    " (depth cap reached)"
                } else {
                    ""
                },
                if parsed.has("--shrink") && report.counterexample.is_some() {
                    " (+shrink/replay)"
                } else {
                    ""
                },
            );
        }
        match &shrunk {
            None => {
                if report.is_certified_clean() {
                    println!(
                        "verdict             : CERTIFIED CLEAN — no crash placement within the \
                         budget violates agreement or validity"
                    );
                } else {
                    let why = if report.stats.timed_out {
                        "the deadline expired"
                    } else {
                        "search was capped"
                    };
                    println!(
                        "verdict             : clean within the explored bound ({why}, so this \
                         is NOT a certification)"
                    );
                }
            }
            Some((cex, replayed)) => {
                let tag = if parsed.has("--shrink") {
                    "minimal schedule"
                } else {
                    "schedule"
                };
                println!("{tag:<20}: {}", cex.schedule);
                println!("violation           : {}", cex.violation);
                if let Some(d) = &cex.divergence {
                    println!("divergence          : {d}");
                }
                println!(
                    "threaded replay     : {}",
                    if replayed.confirmed() {
                        "CONFIRMED (same outputs, same violation, faithful trace)"
                    } else {
                        "DID NOT CONFIRM — executor/runtime disagreement, please report"
                    }
                );
            }
        }
    }
    if let Some(path) = parsed.value("--trace") {
        tracer
            .flush()
            .map_err(|e| format!("flushing trace to {path}: {e}"))?;
        if !parsed.has("--json") {
            println!("trace               : {path}");
        }
    }
    // In JSON mode the metrics already rode along inside the one report
    // object; only text mode gets the registry printed separately.
    if parsed.has("--metrics") && !parsed.has("--json") {
        if let Some(snapshot) = run_tracer.snapshot() {
            print!("{}", snapshot.render_text());
        }
    }
    match &shrunk {
        Some(_) => Err(format!(
            "crashtest found a counterexample for {spec} (see above)"
        )),
        None => Ok(()),
    }
}

/// `rcn check <protocol>…` — the independent breadth-first model checker
/// (`rcn-mc`): a second opinion on `crashtest`'s DFS verdicts, sharing no
/// search code with it, reporting minimal-depth counterexamples and an
/// honest exhaustive/bounded coverage tag. With `--valency` it also
/// re-derives the initial configuration's valency by a worklist fixpoint
/// over the budgeted `E_z*` graph. Exits nonzero if any protocol has a
/// counterexample.
fn cmd_check(args: &[&str]) -> Result<(), String> {
    use rcn_mc::{model_check_traced, valency_check, McConfig, ValencyConfig};

    let parsed = parse_args(
        args,
        &[
            "--crashes",
            "--depth",
            "--max-states",
            "--fault-model",
            "--inputs",
            "--z",
            "--clamp",
            "--trace",
            "--bench-json",
        ],
        &["--valency", "--json", "--stats", "--metrics", "--force"],
    )?;
    if parsed.positionals.is_empty() {
        return Err(
            "usage: rcn check <protocol>… [--crashes K] [--depth D] [--max-states N] \
             [--fault-model per-process|system|mid-op|all] [--inputs 0,1] [--valency] \
             [--z Z] [--clamp C] [--json] [--stats] \
             [--trace PATH] [--metrics] [--bench-json PATH]"
                .into(),
        );
    }
    let mut config = McConfig::default();
    if let Some(v) = parsed.value("--crashes") {
        config.max_crashes = v.parse().map_err(|_| "crashes must be a number")?;
    }
    if let Some(v) = parsed.value("--depth") {
        config.max_depth = v.parse().map_err(|_| "depth must be a number")?;
        if config.max_depth == 0 {
            return Err("depth must be at least 1".into());
        }
    }
    if let Some(v) = parsed.value("--max-states") {
        config.max_states = v.parse().map_err(|_| "max-states must be a number")?;
        if config.max_states == 0 {
            return Err("max-states must be at least 1".into());
        }
    }
    if let Some(v) = parsed.value("--fault-model") {
        config.fault_model = v.parse().map_err(|e| format!("{e}"))?;
    }
    let mut vconfig = ValencyConfig::default();
    if let Some(v) = parsed.value("--z") {
        vconfig.z = v.parse().map_err(|_| "z must be a number")?;
    }
    if let Some(v) = parsed.value("--clamp") {
        vconfig.clamp = v.parse().map_err(|_| "clamp must be a number")?;
    }
    if parsed.value("--max-states").is_some() {
        vconfig.max_states = config.max_states;
    }
    let inputs = parsed
        .value("--inputs")
        .map(|v| parse_inputs_slice(&v.split(',').collect::<Vec<_>>()))
        .transpose()?;

    let tracer = tracer_from_args(&parsed)?;
    let bench_path = parsed.value("--bench-json");
    let mut recorder = BenchRecorder::new("mc");
    let mut violators: Vec<&str> = Vec::new();
    let mut json_objects: Vec<String> = Vec::new();

    for (i, spec) in parsed.positionals.iter().enumerate() {
        let (label, sys) = build_protocol(spec, inputs.clone())?;
        // Bench records want clean per-run `mc.*` counters; when the shared
        // tracer is not already recording, each run gets its own registry.
        let run_tracer = if bench_path.is_some() && !tracer.recording() {
            Tracer::metrics_only()
        } else {
            tracer.clone()
        };
        let started = std::time::Instant::now();
        let report = model_check_traced(&sys, config, &run_tracer);
        let valency = parsed
            .has("--valency")
            .then(|| valency_check(&sys, vconfig));
        let wall = started.elapsed();
        if report.counterexample.is_some() {
            violators.push(spec);
        }
        if let Some(_path) = bench_path {
            let model_suffix = if config.fault_model == rcn_model::FaultModel::default() {
                String::new()
            } else {
                format!(",model={}", config.fault_model)
            };
            let mut record = BenchRecord::from_timing(
                format!(
                    "check/{spec}/crashes={},depth={}{model_suffix}",
                    config.max_crashes, config.max_depth
                ),
                1,
                wall.as_secs_f64(),
                report.stats.states_visited,
            );
            if let Some(snapshot) = run_tracer.snapshot() {
                record.metrics = snapshot;
            }
            recorder.record(record);
        }

        if parsed.has("--json") {
            let mut fields = vec![
                format!("\"protocol\": {}", json_str(spec)),
                format!("\"crashes\": {}", config.max_crashes),
                format!("\"depth\": {}", config.max_depth),
                format!(
                    "\"fault_model\": {}",
                    json_str(&config.fault_model.to_string())
                ),
                format!("\"states_visited\": {}", report.stats.states_visited),
                format!("\"events_applied\": {}", report.stats.events_applied),
                format!("\"frontier_peak\": {}", report.stats.frontier_peak),
                format!("\"dedup_ratio\": {:.4}", report.stats.dedup_ratio()),
                format!("\"coverage\": {}", json_str(&report.coverage.to_string())),
                format!("\"clean\": {}", report.counterexample.is_none()),
            ];
            if let Some(cex) = &report.counterexample {
                fields.push(format!(
                    "\"schedule\": {}",
                    json_str(&cex.schedule.to_string())
                ));
                fields.push(format!(
                    "\"violation\": {}",
                    json_str(&cex.violation.to_string())
                ));
            }
            if let Some(v) = &valency {
                fields.push(format!(
                    "\"valency\": {{\"verdict\": {}, \"z\": {}, \"clamp\": {}, \
                     \"states\": {}, \"coverage\": {}}}",
                    json_str(&v.valency.to_string()),
                    vconfig.z,
                    vconfig.clamp,
                    v.states,
                    json_str(&v.coverage.to_string())
                ));
            }
            if parsed.has("--stats") {
                fields.push(format!("\"wall_seconds\": {}", wall.as_secs_f64()));
            }
            json_objects.push(format!("{{{}}}", fields.join(", ")));
        } else {
            if i > 0 {
                println!();
            }
            println!("protocol            : {label}");
            println!(
                "crash budget        : ≤{} crash(es) per process, schedules ≤{} events",
                config.max_crashes, config.max_depth
            );
            println!("fault model         : {}", config.fault_model);
            println!("explored            : {}", report.stats);
            println!("coverage            : {}", report.coverage);
            if parsed.has("--stats") {
                println!(
                    "check stats         : {} in {:.3}s",
                    report.stats,
                    wall.as_secs_f64()
                );
            }
            match &report.counterexample {
                None => {
                    if report.is_certified_clean() {
                        println!(
                            "verdict             : CERTIFIED CLEAN — breadth-first search found \
                             no violating schedule within the budget"
                        );
                    } else {
                        println!(
                            "verdict             : clean within the explored bound (state cap \
                             hit, so this is NOT a certification)"
                        );
                    }
                }
                Some(cex) => {
                    println!("minimal schedule    : {}", cex.schedule);
                    println!("violation           : {}", cex.violation);
                    println!(
                        "verdict             : VIOLATION — minimal-depth counterexample found \
                         by breadth-first search"
                    );
                }
            }
            if let Some(v) = &valency {
                println!(
                    "valency             : initial configuration is {} (z={}, clamp={}, \
                     {} states, {})",
                    v.valency, vconfig.z, vconfig.clamp, v.states, v.coverage
                );
            }
        }
    }

    if parsed.has("--json") {
        // One protocol prints its object bare; several are wrapped so the
        // stdout document stays a single JSON value.
        let metrics_field = parsed
            .has("--metrics")
            .then(|| tracer.snapshot())
            .flatten()
            .map(|s| format!(", \"metrics\": {}", s.to_json()))
            .unwrap_or_default();
        match &json_objects[..] {
            [one] if metrics_field.is_empty() => println!("{one}"),
            [one] => println!(
                "{{{}{metrics_field}}}",
                &one[1..one.len() - 1] // splice metrics into the one object
            ),
            many => println!("{{\"checks\": [{}]{metrics_field}}}", many.join(", ")),
        }
    }
    if let Some(path) = bench_path {
        recorder
            .write_to(std::path::Path::new(path))
            .map_err(|e| format!("writing bench records to {path}: {e}"))?;
        if !parsed.has("--json") {
            println!("bench records       : {path}");
        }
    }
    flush_trace(&parsed, &tracer)?;
    if parsed.has("--metrics") && !parsed.has("--json") {
        if let Some(snapshot) = tracer.snapshot() {
            print!("{}", snapshot.render_text());
        }
    }
    match &violators[..] {
        [] => Ok(()),
        some => Err(format!(
            "check found a counterexample for {} (see above)",
            some.join(", ")
        )),
    }
}

/// `rcn profile <trace.jsonl>` — aggregate a `--trace` file into a
/// per-span time breakdown: call counts, total and self time (total minus
/// direct children), and exact p50/p99 per-call durations.
fn cmd_profile(args: &[&str]) -> Result<(), String> {
    let parsed = parse_args(args, &[], &["--json"])?;
    let [path] = parsed.positionals[..] else {
        return Err("usage: rcn profile <trace.jsonl> [--json]".into());
    };
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read trace {path}: {e}"))?;
    let events = parse_jsonl(&text).map_err(|e| format!("bad trace {path}: {e}"))?;
    if events.is_empty() {
        return Err(format!("trace {path} contains no events"));
    }
    let report = ProfileReport::build(&events);
    if parsed.has("--json") {
        println!("{}", report.to_json());
    } else {
        println!("profile of {path} ({} trace rows)", events.len());
        print!("{}", report.render_text());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(items: &[&str]) -> Vec<String> {
        items.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn parse_args_splits_flags_and_positionals() {
        let p = parse_args(
            &["tas", "--cap=6", "--stats", "--threads", "2", "extra"],
            &["--cap", "--threads"],
            &["--stats"],
        )
        .unwrap();
        assert_eq!(p.positionals, vec!["tas", "extra"]);
        assert_eq!(p.value("--cap"), Some("6"));
        assert_eq!(p.value("--threads"), Some("2"));
        assert!(p.has("--stats"));
        assert!(!p.has("--no-cache"));
        // Last occurrence wins, and `=` may appear inside the value.
        let p = parse_args(&["--cap=3", "--cap=4"], &["--cap"], &[]).unwrap();
        assert_eq!(p.value("--cap"), Some("4"));
        let p = parse_args(&["--cache-dir=/tmp/a=b"], &["--cache-dir"], &[]).unwrap();
        assert_eq!(p.value("--cache-dir"), Some("/tmp/a=b"));
    }

    #[test]
    fn parse_args_rejects_malformed_flags() {
        assert!(parse_args(&["--bogus"], &["--cap"], &["--stats"]).is_err());
        assert!(parse_args(&["--cap"], &["--cap"], &[]).is_err());
        assert!(parse_args(&["--stats=1"], &[], &["--stats"]).is_err());
        // A prefix of a known flag is not that flag.
        assert!(parse_args(&["--ca", "6"], &["--cap"], &[]).is_err());
    }

    #[test]
    fn help_and_types_run() {
        assert!(run(&s(&["help"])).is_ok());
        assert!(run(&s(&["types"])).is_ok());
        assert!(run(&s(&[])).is_ok());
    }

    #[test]
    fn classify_runs_on_small_types() {
        assert!(run(&s(&["classify", "tas"])).is_ok());
        assert!(run(&s(&["classify", "register:2", "--cap", "3"])).is_ok());
    }

    #[test]
    fn classify_accepts_threads_and_stats_flags() {
        assert!(run(&s(&["classify", "tas", "--threads", "2", "--stats"])).is_ok());
        assert!(run(&s(&["classify", "tas", "--threads", "0"])).is_ok());
        assert!(run(&s(&[
            "witness",
            "sticky",
            "3",
            "recording",
            "--threads",
            "2",
            "--stats"
        ]))
        .is_ok());
        assert!(run(&s(&[
            "compare",
            "tas",
            "register:2",
            "--threads",
            "2",
            "--cap",
            "3",
            "--stats"
        ]))
        .is_ok());
        // A flag value must not be eaten as a positional type name.
        assert!(run(&s(&["classify", "--threads", "2", "tas"])).is_ok());
    }

    #[test]
    fn trace_metrics_and_profile_round_trip() {
        let dir = std::env::temp_dir().join(format!("rcn-cli-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("t.jsonl");
        let trace_arg = trace.to_str().unwrap();

        // A traced classify writes parseable JSONL.
        assert!(run(&s(&["classify", "tas", "--cap", "3", "--trace", trace_arg])).is_ok());
        let text = std::fs::read_to_string(&trace).unwrap();
        let events = parse_jsonl(&text).expect("every trace line parses");
        assert!(
            events.iter().any(|e| e.name == "engine.level"),
            "classify must record engine.level spans"
        );

        // Overwrite refusal without --force; --force allows it.
        assert!(run(&s(&["classify", "tas", "--cap", "3", "--trace", trace_arg])).is_err());
        assert!(run(&s(&[
            "classify", "tas", "--cap", "3", "--trace", trace_arg, "--force"
        ]))
        .is_ok());

        // The profile command digests the trace, in both renderings.
        assert!(run(&s(&["profile", trace_arg])).is_ok());
        assert!(run(&s(&["profile", trace_arg, "--json"])).is_ok());
        assert!(run(&s(&["profile", "/nonexistent/t.jsonl"])).is_err());

        // --metrics works standalone and with --json, on search and faults.
        assert!(run(&s(&["classify", "tas", "--cap", "3", "--metrics"])).is_ok());
        assert!(run(&s(&[
            "classify",
            "tas",
            "--cap",
            "3",
            "--metrics",
            "--json"
        ]))
        .is_ok());
        assert!(run(&s(&["witness", "sticky", "3", "recording", "--metrics"])).is_ok());
        assert!(run(&s(&["compare", "tas", "--cap", "3", "--metrics"])).is_ok());

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crashtest_and_lint_take_stats_and_metrics() {
        // crashtest: tas finds a counterexample (exit err) — flags must
        // still be accepted; the clean tournament run exits ok.
        assert!(run(&s(&["crashtest", "tas", "--stats", "--metrics"])).is_err());
        assert!(run(&s(&[
            "crashtest",
            "tnn-wait-free",
            "--depth",
            "6",
            "--shrink",
            "--stats",
            "--metrics",
            "--json"
        ]))
        .is_err());
        assert!(run(&s(&["lint", "tas", "--stats"])).is_ok());
        assert!(run(&s(&["lint", "tas", "--stats", "--json"])).is_ok());
    }

    #[test]
    fn out_of_range_caps_error_instead_of_panicking() {
        assert!(run(&s(&["classify", "tas", "--cap", "25"])).is_err());
        assert!(run(&s(&["classify", "tas", "--cap", "1"])).is_err());
        assert!(run(&s(&["classify", "tas", "--cap", "0"])).is_err());
        assert!(run(&s(&["witness", "tas", "25", "recording"])).is_err());
        assert!(run(&s(&["compare", "tas", "--cap", "25"])).is_err());
        assert!(run(&s(&["classify", "tas", "--threads", "x"])).is_err());
    }

    #[test]
    fn equals_style_flag_values_are_honored() {
        // `--cap=6` used to be silently dropped (the search ran at the
        // default cap 4). Now the value is seen: `--cap=1` must trip the
        // same guard as `--cap 1`, and `--cap=3` must succeed.
        assert!(run(&s(&["classify", "tas", "--cap=3"])).is_ok());
        assert!(run(&s(&["classify", "tas", "--cap=1"])).is_err());
        assert!(run(&s(&["classify", "tas", "--cap=25"])).is_err());
        assert!(run(&s(&[
            "compare",
            "tas",
            "register:2",
            "--cap=3",
            "--threads=2"
        ]))
        .is_ok());
        assert!(run(&s(&["witness", "sticky", "3", "recording", "--threads=2"])).is_ok());
        assert!(run(&s(&["lint", "tas", "--deny=warnings"])).is_ok());
    }

    #[test]
    fn malformed_flags_are_usage_errors_not_ignored() {
        let err = run(&s(&["classify", "tas", "--pac", "6"])).unwrap_err();
        assert!(err.contains("unknown flag `--pac`"), "got: {err}");
        let err = run(&s(&["classify", "tas", "--cap"])).unwrap_err();
        assert!(err.contains("missing value for `--cap`"), "got: {err}");
        let err = run(&s(&["classify", "tas", "--stats=yes"])).unwrap_err();
        assert!(err.contains("does not take a value"), "got: {err}");
        // Flags another search command accepts are still rejected where
        // they mean nothing, instead of being silently swallowed.
        assert!(run(&s(&["witness", "tas", "2", "--cap", "6"])).is_err());
        assert!(run(&s(&["dot", "tas", "--cap", "3"])).is_err());
        assert!(run(&s(&["table", "tas", "--stats"])).is_err());
    }

    #[test]
    fn cache_flags_round_trip_through_the_cli() {
        let dir = std::env::temp_dir().join(format!("rcn-cli-cache-{}", std::process::id()));
        let dir = dir.to_str().unwrap();
        // Cold run populates, warm run must agree; --no-cache wins.
        assert!(run(&s(&["classify", "tas", "--cache-dir", dir])).is_ok());
        assert!(run(&s(&["classify", "tas", &format!("--cache-dir={dir}")])).is_ok());
        assert!(run(&s(&["classify", "tas", "--cache-dir", dir, "--no-cache"])).is_ok());
        assert!(run(&s(&["witness", "sticky", "3", "--cache-dir", dir])).is_ok());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn bench_json_flag_writes_a_record() {
        let dir = std::env::temp_dir().join(format!("rcn-cli-bench-{}", std::process::id()));
        let path = dir.join("BENCH_classify_tas.json");
        let path_str = path.to_str().unwrap().to_string();
        assert!(run(&s(&["classify", "tas", "--bench-json", &path_str])).is_ok());
        let text = std::fs::read_to_string(&path).expect("bench json written");
        assert!(text.contains("\"incremental_hits\""), "got: {text}");
        assert!(text.contains("classify/tas/cap=4"), "got: {text}");
        std::fs::remove_dir_all(&dir).ok();
        // Only classify takes the flag; elsewhere it is a usage error, not
        // silently swallowed.
        assert!(run(&s(&["witness", "tas", "2", "--bench-json", "x.json"])).is_err());
        assert!(run(&s(&["compare", "tas", "--bench-json", "x.json"])).is_err());
    }

    #[test]
    fn compare_renders_a_table() {
        assert!(run(&s(&["compare", "tas", "register:2", "--cap", "3"])).is_ok());
        assert!(run(&s(&["compare"])).is_err());
    }

    #[test]
    fn witness_explains_both_kinds() {
        assert!(run(&s(&["witness", "tas", "2", "discerning"])).is_ok());
        assert!(run(&s(&["witness", "sticky", "2", "recording"])).is_ok());
        assert!(run(&s(&["witness", "tas", "2", "nonsense"])).is_err());
    }

    #[test]
    fn dot_and_table_render() {
        assert!(run(&s(&["dot", "tnn:3,1"])).is_ok());
        assert!(run(&s(&["table", "tas"])).is_ok());
    }

    #[test]
    fn solve_verifies_sticky_and_rejects_tas() {
        assert!(run(&s(&["solve", "sticky", "0", "1"])).is_ok());
        assert!(run(&s(&["solve", "tas", "0", "1"])).is_err());
    }

    #[test]
    fn simulate_tnn_runs() {
        assert!(run(&s(&["simulate-tnn", "4", "2", "0", "1"])).is_ok());
    }

    #[test]
    fn lint_runs_clean_on_types_and_catalogue() {
        assert!(run(&s(&["lint", "tas"])).is_ok());
        assert!(run(&s(&["lint", "sticky", "register:3", "--json"])).is_ok());
        assert!(run(&s(&["lint", "--all", "--deny", "warnings"])).is_ok());
        assert!(run(&s(&["lint"])).is_err());
        assert!(run(&s(&["lint", "tas", "--deny", "everything"])).is_err());
        assert!(run(&s(&["lint", "warp-drive"])).is_err());
    }

    #[test]
    fn lint_deny_warnings_gates_the_exit_code() {
        // A closed table with a 2-cycle unreachable from its only source
        // value: valid, but trips the RCN002 warning.
        let mut b = rcn_spec::TableType::builder("cli-island", 3, 1, 1);
        use rcn_spec::{Outcome, Response, ValueId};
        b.set(0, 0, Outcome::new(Response(0), ValueId(0)));
        b.set(1, 0, Outcome::new(Response(0), ValueId(2)));
        b.set(2, 0, Outcome::new(Response(0), ValueId(1)));
        let table = b.build().unwrap();
        let path = std::env::temp_dir().join("rcn_cli_lint_island.json");
        std::fs::write(&path, serde_json::to_string(&table).unwrap()).unwrap();
        let spec = format!("table:{}", path.display());
        assert!(run(&s(&["lint", &spec])).is_ok());
        assert!(run(&s(&["lint", &spec, "--deny", "warnings"])).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lint_reports_closedness_on_unvalidated_tables() {
        // An out-of-range table that `parse_type` would reject up front:
        // `lint` loads it unvalidated so RCN001 itself reports the holes
        // (and fails the command), while e.g. `classify` still refuses it.
        let json = r#"{
            "name": "cli-broken", "num_values": 2, "num_ops": 1, "num_responses": 2,
            "table": [[{"response": 9, "next": 0}], [{"response": 0, "next": 1}]],
            "value_names": ["v0", "v1"], "op_names": ["op0"],
            "response_names": ["r0", "r1"]
        }"#;
        let path = std::env::temp_dir().join("rcn_cli_lint_broken.json");
        std::fs::write(&path, json).unwrap();
        let spec = format!("table:{}", path.display());
        let err = run(&s(&["lint", &spec])).unwrap_err();
        assert!(err.contains("1 error"), "unexpected error: {err}");
        assert!(run(&s(&["classify", &spec])).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crashtest_finds_the_known_counterexamples() {
        // Broken protocols exit nonzero, in every output mode.
        assert!(run(&s(&["crashtest", "tas"])).is_err());
        assert!(run(&s(&["crashtest", "tas", "--shrink"])).is_err());
        assert!(run(&s(&["crashtest", "tas", "--shrink", "--json"])).is_err());
        assert!(run(&s(&["crashtest", "tnn-wait-free"])).is_err());
        assert!(run(&s(&["crashtest", "tnn-wait-free:2,1", "--shrink"])).is_err());
    }

    #[test]
    fn crashtest_certifies_the_correct_protocols() {
        assert!(run(&s(&["crashtest", "tnn-recoverable:5,2"])).is_ok());
        assert!(run(&s(&["crashtest", "tournament", "--inputs", "1,0"])).is_ok());
        assert!(run(&s(&["crashtest", "tournament:sticky", "--json"])).is_ok());
        // A crash budget of zero cannot break a crash-free-correct protocol.
        assert!(run(&s(&["crashtest", "tas", "--crashes", "0"])).is_ok());
    }

    #[test]
    fn crashtest_rejects_malformed_specs() {
        assert!(run(&s(&["crashtest"])).is_err());
        assert!(run(&s(&["crashtest", "warp-drive"])).is_err());
        assert!(run(&s(&["crashtest", "tas:2,1"])).is_err());
        assert!(run(&s(&["crashtest", "tnn-wait-free:x,y"])).is_err());
        assert!(run(&s(&["crashtest", "tournament:warp-drive"])).is_err());
        assert!(run(&s(&["crashtest", "tas", "--depth", "0"])).is_err());
        assert!(run(&s(&["crashtest", "tas", "--max-states", "0"])).is_err());
        assert!(run(&s(&["crashtest", "tas", "--inputs", "0,7"])).is_err());
        assert!(run(&s(&["crashtest", "tas", "--crashes", "x"])).is_err());
        assert!(run(&s(&["crashtest", "tas", "--cap", "3"])).is_err());
    }

    #[test]
    fn crashtest_accepts_sharding_and_timeout_flags() {
        // Sharded runs reach the same verdict (the exit code IS the
        // verdict): broken protocols stay broken, clean ones stay clean.
        assert!(run(&s(&["crashtest", "tas", "--explore-threads", "2"])).is_err());
        assert!(run(&s(&["crashtest", "tas", "--explore-threads=4", "--shrink"])).is_err());
        assert!(run(&s(&[
            "crashtest",
            "tnn-recoverable",
            "--explore-threads",
            "2"
        ]))
        .is_ok());
        // 0 = all cores, mirroring the search commands.
        assert!(run(&s(&[
            "crashtest",
            "tnn-recoverable",
            "--explore-threads",
            "0"
        ]))
        .is_ok());
        // A generous deadline changes nothing; an absurd one still exits
        // zero — the partial is honest, not an error.
        assert!(run(&s(&["crashtest", "tnn-recoverable", "--timeout", "600"])).is_ok());
        assert!(run(&s(&["crashtest", "tas", "--timeout", "0.000001"])).is_ok());
        // Malformed values are usage errors.
        assert!(run(&s(&["crashtest", "tas", "--explore-threads", "x"])).is_err());
        assert!(run(&s(&["crashtest", "tas", "--timeout", "0"])).is_err());
        assert!(run(&s(&["crashtest", "tas", "--timeout", "-1"])).is_err());
        assert!(run(&s(&["crashtest", "tas", "--timeout", "soon"])).is_err());
    }

    #[test]
    fn crashtest_memo_dir_resumes_and_no_memo_wins() {
        let dir = std::env::temp_dir().join("rcn_cli_crashtest_memo");
        std::fs::remove_dir_all(&dir).ok();
        let d = dir.display().to_string();
        // Cold run stores, warm run resumes — the verdict (exit code) is
        // identical both ways, for a broken and a certified-clean protocol.
        assert!(run(&s(&["crashtest", "tas", "--memo-dir", &d])).is_err());
        assert!(run(&s(&["crashtest", "tas", "--memo-dir", &d, "--json"])).is_err());
        assert!(run(&s(&["crashtest", "tnn-recoverable", "--memo-dir", &d])).is_ok());
        assert!(run(&s(&["crashtest", "tnn-recoverable", "--memo-dir", &d])).is_ok());
        // Something was actually persisted.
        assert!(std::fs::read_dir(&dir).unwrap().count() >= 2);
        // --no-memo wins over --memo-dir: the run neither reads nor writes.
        let fresh = dir.join("untouched");
        let f = fresh.display().to_string();
        assert!(run(&s(&["crashtest", "tas", "--memo-dir", &f, "--no-memo"])).is_err());
        assert!(!fresh.exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crashtest_writes_bench_records() {
        let dir = std::env::temp_dir().join("rcn_cli_crashtest_bench");
        let path = dir.join("BENCH_crashtest.json");
        let path_str = path.display().to_string();
        // tas violates, so the run exits nonzero — the records are still
        // written first (CI wraps the call the same way).
        assert!(run(&s(&["crashtest", "tas", "--bench-json", &path_str])).is_err());
        let text = std::fs::read_to_string(&path).unwrap();
        for fragment in [
            "\"crashtest/tas/crashes=2,depth=16\"",
            "\"crashtest.states_visited\"",
            "\"crashtest.events_applied\"",
        ] {
            assert!(text.contains(fragment), "missing {fragment} in:\n{text}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn check_rediscovers_the_known_counterexamples() {
        // The independent BFS checker exits nonzero on the same broken
        // protocols as the DFS explorer, in every output mode.
        assert!(run(&s(&["check", "tas"])).is_err());
        assert!(run(&s(&["check", "tas", "--json"])).is_err());
        assert!(run(&s(&["check", "tnn-wait-free"])).is_err());
        // One violator in a batch fails the whole batch.
        assert!(run(&s(&["check", "tnn-recoverable", "tas"])).is_err());
    }

    #[test]
    fn check_certifies_the_correct_protocols() {
        assert!(run(&s(&["check", "tnn-recoverable:5,2", "--valency"])).is_ok());
        assert!(run(&s(&["check", "tournament", "--inputs", "1,0"])).is_ok());
        assert!(run(&s(&["check", "tournament:sticky", "--json", "--metrics"])).is_ok());
        assert!(run(&s(&["check", "tnn-recoverable", "tournament", "--stats"])).is_ok());
        assert!(run(&s(&["check", "tas", "--crashes", "0"])).is_ok());
    }

    #[test]
    fn check_rejects_malformed_specs() {
        assert!(run(&s(&["check"])).is_err());
        assert!(run(&s(&["check", "warp-drive"])).is_err());
        assert!(run(&s(&["check", "tas", "--depth", "0"])).is_err());
        assert!(run(&s(&["check", "tas", "--max-states", "0"])).is_err());
        assert!(run(&s(&["check", "tas", "--inputs", "0,7"])).is_err());
        assert!(run(&s(&["check", "tas", "--crashes", "x"])).is_err());
        assert!(run(&s(&["check", "tas", "--z", "x"])).is_err());
        assert!(run(&s(&["check", "tas", "--shrink"])).is_err());
    }

    #[test]
    fn check_writes_bench_records() {
        let dir = std::env::temp_dir().join("rcn_cli_check_bench");
        let path = dir.join("BENCH_mc.json");
        let path_str = path.display().to_string();
        // tas violates, so the run exits nonzero — the records are still
        // written first (CI wraps the call the same way).
        assert!(run(&s(&["check", "tas", "--bench-json", &path_str])).is_err());
        let text = std::fs::read_to_string(&path).unwrap();
        for fragment in [
            "\"check/tas/crashes=2,depth=16\"",
            "\"mc.states_visited\"",
            "\"mc.frontier_peak\"",
        ] {
            assert!(text.contains(fragment), "missing {fragment} in:\n{text}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lint_accepts_observability_flags() {
        assert!(run(&s(&["lint", "sticky", "--metrics"])).is_ok());
        assert!(run(&s(&["lint", "sticky", "--metrics", "--json"])).is_ok());
        let path = std::env::temp_dir().join("rcn_cli_lint_trace.jsonl");
        let path_str = path.display().to_string();
        std::fs::remove_file(&path).ok();
        assert!(run(&s(&["lint", "sticky", "--trace", &path_str])).is_ok());
        // Refuses to clobber without --force.
        assert!(run(&s(&["lint", "sticky", "--trace", &path_str])).is_err());
        assert!(run(&s(&["lint", "sticky", "--trace", &path_str, "--force"])).is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn timeout_flag_is_honored_and_honest() {
        // A generous deadline changes nothing.
        assert!(run(&s(&["classify", "tas", "--timeout", "600"])).is_ok());
        assert!(run(&s(&[
            "witness",
            "sticky",
            "3",
            "recording",
            "--timeout=600"
        ]))
        .is_ok());
        assert!(run(&s(&["compare", "tas", "--cap", "3", "--timeout", "600"])).is_ok());
        // An absurd deadline still succeeds — partial results, nonzero only
        // on real errors.
        assert!(run(&s(&["classify", "tas", "--timeout", "0.000001"])).is_ok());
        // Malformed deadlines are usage errors.
        assert!(run(&s(&["classify", "tas", "--timeout", "0"])).is_err());
        assert!(run(&s(&["classify", "tas", "--timeout", "-1"])).is_err());
        assert!(run(&s(&["classify", "tas", "--timeout", "soon"])).is_err());
        assert!(run(&s(&["dot", "tas", "--timeout", "1"])).is_err());
    }

    #[test]
    fn bad_commands_and_args_error() {
        assert!(run(&s(&["frobnicate"])).is_err());
        assert!(run(&s(&["classify"])).is_err());
        assert!(run(&s(&["solve", "sticky", "0", "7"])).is_err());
        assert!(run(&s(&["solve", "sticky", "0"])).is_err());
    }
}
