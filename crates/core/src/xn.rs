//! Shipped `X_n` reconstructions: synthesized tables with machine-checked
//! profiles (experiment E6).
//!
//! The paper's corollary says DFFR'22's readable type `X_n` has recoverable
//! consensus number exactly `n−2` (consensus number `n`). DFFR's
//! construction is not restated in the paper, so we ship **synthesized**
//! types with the same decider profile — found by
//! `rcn_decide::synthesis::hill_climb` and re-verified by the deciders in
//! this module's tests on every run.

use rcn_spec::zoo::Xn;
use rcn_spec::TableType;

/// The synthesized `X_4` table (readable, 4-discerning, 2-recording),
/// found by `rcn-decide`'s hill climb seeded from `TeamCounter(4)`.
const XN_4_JSON: &str = include_str!("../data/xn_4.json");

/// Loads a shipped, verified `X_n` reconstruction.
///
/// Returns `None` when no table has been synthesized for this `n` (the
/// `xn_hunt` example in `rcn-decide` searches for more).
///
/// # Examples
///
/// ```
/// use rcn_core::shipped_xn;
/// use rcn_decide::{discerning_number, recording_number};
///
/// let x4 = shipped_xn(4).expect("X_4 ships with the crate");
/// assert_eq!(discerning_number(&x4, 5).level, 4);
/// assert_eq!(recording_number(&x4, 5).level, 2);
/// ```
pub fn shipped_xn(n: usize) -> Option<Xn> {
    let json = match n {
        4 => XN_4_JSON,
        _ => return None,
    };
    let table: TableType = serde_json::from_str(json).expect("embedded X_n tables deserialize");
    table.validate().expect("embedded X_n tables are valid");
    Some(Xn::from_table(n, table))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcn_decide::{classify, discerning_number, recording_number, Bound};
    use rcn_spec::ObjectType;

    #[test]
    fn x4_profile_is_machine_verified() {
        // The full E6 claim, re-checked from scratch on every test run.
        let x4 = shipped_xn(4).expect("shipped");
        assert!(x4.is_readable());
        let d = discerning_number(&x4, 5);
        assert_eq!(d.level, 4, "4-discerning but not 5-discerning");
        assert!(!d.capped);
        let r = recording_number(&x4, 5);
        assert_eq!(r.level, 2, "2-recording but not 3-recording");
        // Theorem 13 + DFFR Thm 8: readable ⟹ exact numbers.
        let c = classify(&x4, 5);
        assert_eq!(c.consensus_number, Bound::Exact(4));
        assert_eq!(c.recoverable_consensus_number, Bound::Exact(2));
    }

    #[test]
    fn unshipped_sizes_return_none() {
        assert!(shipped_xn(3).is_none());
        assert!(shipped_xn(6).is_none());
    }
}
