//! Hierarchy reports: classify a set of types and render the comparison
//! table that experiment E5/E8 prints.

use rcn_decide::{classify, robust_level, TypeClassification};
use rcn_spec::ObjectType;
use std::fmt;

/// A classification report over a set of types.
///
/// # Examples
///
/// ```
/// use rcn_core::HierarchyReport;
/// use rcn_spec::zoo::{Register, TestAndSet};
///
/// let mut report = HierarchyReport::new(3);
/// report.add(&Register::new(2));
/// report.add(&TestAndSet::new());
/// assert_eq!(report.robust_level().0, 1);
/// println!("{report}");
/// ```
#[derive(Debug)]
pub struct HierarchyReport {
    cap: usize,
    classes: Vec<TypeClassification>,
}

impl HierarchyReport {
    /// Creates an empty report; searches run up to level `cap`.
    ///
    /// # Panics
    ///
    /// Panics if `cap < 2`.
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 2, "cap must be at least 2");
        HierarchyReport {
            cap,
            classes: Vec::new(),
        }
    }

    /// Classifies a type and appends it to the report.
    pub fn add<T: ObjectType + ?Sized>(&mut self, ty: &T) -> &TypeClassification {
        self.classes.push(classify(ty, self.cap));
        self.classes.last().expect("just pushed")
    }

    /// The classifications so far.
    pub fn classes(&self) -> &[TypeClassification] {
        &self.classes
    }

    /// The search cap used.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Theorem 14's *robust level* of the type set: the maximum recoverable
    /// consensus number across the set — combining objects of these types
    /// cannot do better (for deterministic readable types).
    pub fn robust_level(&self) -> (usize, Option<String>) {
        robust_level(&self.classes)
    }
}

impl fmt::Display for HierarchyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<24} {:<8} {:<6} {:<6} (discerning=d, recording=r, cap={})",
            "type", "readable", "CN", "RCN", self.cap
        )?;
        for c in &self.classes {
            writeln!(
                f,
                "{:<24} {:<8} {:<6} {:<6} (d={}, r={})",
                c.type_name,
                if c.readable { "yes" } else { "no" },
                c.consensus_number.to_string(),
                c.recoverable_consensus_number.to_string(),
                c.discerning.display_level(),
                c.recording.display_level(),
            )?;
        }
        let (level, who) = self.robust_level();
        write!(
            f,
            "robust level of the set: {level}{}",
            who.map(|w| format!(" (via {w})")).unwrap_or_default()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcn_spec::zoo::{Register, StickyBit, TestAndSet};

    #[test]
    fn report_accumulates_and_renders() {
        let mut report = HierarchyReport::new(3);
        report.add(&Register::new(2));
        report.add(&TestAndSet::new());
        report.add(&StickyBit::new());
        assert_eq!(report.classes().len(), 3);
        let text = report.to_string();
        assert!(text.contains("test-and-set"));
        assert!(text.contains("sticky-bit"));
        assert!(text.contains("robust level of the set: 3"));
    }

    #[test]
    fn robust_level_matches_best_member() {
        let mut report = HierarchyReport::new(3);
        report.add(&Register::new(2));
        assert_eq!(report.robust_level(), (1, None));
        report.add(&StickyBit::new());
        let (level, who) = report.robust_level();
        assert_eq!(level, 3);
        assert_eq!(who.as_deref(), Some("sticky-bit"));
    }
}
