//! Hierarchy reports: classify a set of types and render the comparison
//! table that experiment E5/E8 prints.

use rcn_decide::{classify, robust_level, SearchEngine, SearchError, TypeClassification};
use rcn_spec::ObjectType;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A classification report over a set of types.
///
/// # Examples
///
/// ```
/// use rcn_core::HierarchyReport;
/// use rcn_spec::zoo::{Register, TestAndSet};
///
/// let mut report = HierarchyReport::new(3);
/// report.add(&Register::new(2));
/// report.add(&TestAndSet::new());
/// assert_eq!(report.robust_level().0, 1);
/// println!("{report}");
/// ```
#[derive(Debug)]
pub struct HierarchyReport {
    cap: usize,
    classes: Vec<TypeClassification>,
}

impl HierarchyReport {
    /// Creates an empty report; searches run up to level `cap`.
    ///
    /// # Panics
    ///
    /// Panics if `cap < 2`.
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 2, "cap must be at least 2");
        HierarchyReport {
            cap,
            classes: Vec::new(),
        }
    }

    /// Classifies a type and appends it to the report.
    pub fn add<T: ObjectType + ?Sized>(&mut self, ty: &T) -> &TypeClassification {
        self.classes.push(classify(ty, self.cap));
        self.classes.last().expect("just pushed")
    }

    /// Classifies a type through a [`SearchEngine`] (instrumented, and
    /// parallel at the instance level when the engine has >1 thread) and
    /// appends it to the report.
    ///
    /// # Errors
    ///
    /// Returns [`SearchError`] if the report's cap is out of the engine's
    /// supported range.
    pub fn add_with<T: ObjectType + Sync + ?Sized>(
        &mut self,
        ty: &T,
        engine: &SearchEngine,
    ) -> Result<&TypeClassification, SearchError> {
        self.classes.push(engine.classify(ty, self.cap)?);
        Ok(self.classes.last().expect("just pushed"))
    }

    /// Classifies a whole set of types concurrently — one type per worker
    /// thread, up to the engine's thread count — and appends the results in
    /// input order. Stats accumulate on `engine` across all workers.
    ///
    /// Per-type searches run sequentially inside each worker (the
    /// coarse-grained sharding already saturates the engine's width), so
    /// the total thread count stays at `engine.threads()`.
    ///
    /// # Errors
    ///
    /// Returns the first [`SearchError`] encountered; in that case no
    /// classifications are appended.
    pub fn add_all<T>(&mut self, types: &[T], engine: &SearchEngine) -> Result<(), SearchError>
    where
        T: std::ops::Deref + Sync,
        T::Target: ObjectType + Sync,
    {
        let workers = engine.threads().min(types.len()).max(1);
        let cap = self.cap;
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<TypeClassification, SearchError>>>> =
            types.iter().map(|_| Mutex::new(None)).collect();

        let worker = || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            let Some(ty) = types.get(i) else { break };
            let result = engine.classify_with(&**ty, cap, 1);
            *slots[i].lock().expect("classification slot") = Some(result);
        };

        if workers <= 1 {
            worker();
        } else {
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(worker);
                }
            });
        }

        let mut classified = Vec::with_capacity(types.len());
        for slot in slots {
            classified.push(
                slot.into_inner()
                    .expect("classification slot")
                    .expect("every index claimed")?,
            );
        }
        self.classes.extend(classified);
        Ok(())
    }

    /// The classifications so far.
    pub fn classes(&self) -> &[TypeClassification] {
        &self.classes
    }

    /// The search cap used.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Theorem 14's *robust level* of the type set: the maximum recoverable
    /// consensus number across the set — combining objects of these types
    /// cannot do better (for deterministic readable types).
    pub fn robust_level(&self) -> (usize, Option<String>) {
        robust_level(&self.classes)
    }
}

impl fmt::Display for HierarchyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<24} {:<8} {:<6} {:<6} (discerning=d, recording=r, cap={})",
            "type", "readable", "CN", "RCN", self.cap
        )?;
        for c in &self.classes {
            writeln!(
                f,
                "{:<24} {:<8} {:<6} {:<6} (d={}, r={})",
                c.type_name,
                if c.readable { "yes" } else { "no" },
                c.consensus_number.to_string(),
                c.recoverable_consensus_number.to_string(),
                c.discerning.display_level(),
                c.recording.display_level(),
            )?;
        }
        let (level, who) = self.robust_level();
        write!(
            f,
            "robust level of the set: {level}{}",
            who.map(|w| format!(" (via {w})")).unwrap_or_default()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcn_spec::zoo::{Register, StickyBit, TestAndSet};

    #[test]
    fn report_accumulates_and_renders() {
        let mut report = HierarchyReport::new(3);
        report.add(&Register::new(2));
        report.add(&TestAndSet::new());
        report.add(&StickyBit::new());
        assert_eq!(report.classes().len(), 3);
        let text = report.to_string();
        assert!(text.contains("test-and-set"));
        assert!(text.contains("sticky-bit"));
        assert!(text.contains("robust level of the set: 3"));
    }

    #[test]
    fn add_all_matches_sequential_adds_in_order() {
        let types: Vec<Box<dyn ObjectType + Send + Sync>> = vec![
            Box::new(Register::new(2)),
            Box::new(TestAndSet::new()),
            Box::new(StickyBit::new()),
        ];
        let mut sequential = HierarchyReport::new(3);
        for ty in &types {
            sequential.add(&**ty);
        }
        let engine = SearchEngine::new(3);
        let mut concurrent = HierarchyReport::new(3);
        concurrent.add_all(&types, &engine).expect("cap in range");
        assert_eq!(concurrent.classes().len(), 3);
        for (a, b) in sequential.classes().iter().zip(concurrent.classes()) {
            assert_eq!(a.type_name, b.type_name, "order preserved");
            assert_eq!(a.consensus_number, b.consensus_number);
            assert_eq!(
                a.recoverable_consensus_number,
                b.recoverable_consensus_number
            );
        }
        assert!(engine.stats().analyses_computed > 0);
        // Concurrent classifications overlap in time: the engine's wall
        // time is the union of in-flight intervals and must never exceed
        // the summed per-search busy time (the old counter summed per-call
        // durations as "wall time", which overshot real elapsed time here).
        let stats = engine.stats();
        assert!(
            stats.wall_time <= stats.busy_time,
            "wall must not exceed busy: {stats}"
        );
    }

    #[test]
    fn add_with_surfaces_engine_errors() {
        let mut report = HierarchyReport::new(rcn_decide::MAX_PROCESSES + 1);
        let engine = SearchEngine::sequential();
        assert!(report.add_with(&Register::new(2), &engine).is_err());
        assert!(report.classes().is_empty());
    }

    #[test]
    fn robust_level_matches_best_member() {
        let mut report = HierarchyReport::new(3);
        report.add(&Register::new(2));
        assert_eq!(report.robust_level(), (1, None));
        report.add(&StickyBit::new());
        let (level, who) = report.robust_level();
        assert_eq!(level, 3);
        assert_eq!(who.as_deref(), Some("sticky-bit"));
    }
}
