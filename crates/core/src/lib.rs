//! # rcn-core — recoverable consensus numbers, end to end
//!
//! The facade of the `rcn` workspace, a full reproduction of *"Determining
//! Recoverable Consensus Numbers"* (Sean Ovens, PODC 2024). It re-exports
//! the layers and adds the top-level workflows:
//!
//! * [`HierarchyReport`] — classify a set of types: consensus numbers,
//!   recoverable consensus numbers, and the Theorem 14 robust level;
//! * [`shipped_xn`] — the synthesized `X_n` reconstructions (readable types
//!   with consensus number `n` and recoverable consensus number `n−2`);
//! * [`solve_recoverable`] — build a runnable recoverable consensus system
//!   for a readable type, from its own recording witnesses;
//! * [`verify`] — model-check any system exhaustively.
//!
//! ## Layers
//!
//! | crate | contents |
//! |-------|----------|
//! | [`spec`] | deterministic sequential type specifications + the zoo |
//! | [`model`] | schedules, crashes, `E_z*` budgets, executor, adversaries |
//! | [`decide`] | n-discerning / n-recording deciders, synthesis |
//! | [`valency`] | exhaustive model checker + §3 valency machinery |
//! | [`protocols`] | §4 algorithms, baselines, tournament construction |
//! | [`runtime`] | threaded NVM-simulated execution with crash injection |
//! | [`universal`] | recoverable universal construction (one-shot object simulation) |
//!
//! ## Quickstart
//!
//! ```
//! use rcn_core::{solve_recoverable, verify};
//! use rcn_spec::zoo::StickyBit;
//! use std::sync::Arc;
//!
//! // Recoverable 3-process consensus from sticky bits, auto-derived from
//! // the type's recording witnesses and exhaustively verified:
//! let sys = solve_recoverable(Arc::new(StickyBit::new()), vec![1, 0, 1]).unwrap();
//! assert!(verify(&sys, 2_000_000).unwrap().is_correct());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hierarchy;
mod xn;

pub use hierarchy::HierarchyReport;
pub use xn::shipped_xn;

pub use rcn_decide as decide;
pub use rcn_model as model;
pub use rcn_protocols as protocols;
pub use rcn_runtime as runtime;
pub use rcn_spec as spec;
pub use rcn_universal as universal;
pub use rcn_valency as valency;

use rcn_model::System;
use rcn_protocols::{PlanError, TournamentConsensus};
use rcn_spec::ObjectType;
use rcn_valency::{ExploreError, Verdict};
use std::sync::Arc;

/// Builds a recoverable wait-free consensus system for the given inputs
/// using objects of a readable type, deriving the protocol from the type's
/// own (non-hiding) recording witnesses.
///
/// # Errors
///
/// Returns [`PlanError`] if the type is not readable or lacks the witnesses
/// (e.g. test-and-set: Golab's separation).
///
/// # Examples
///
/// ```
/// use rcn_core::solve_recoverable;
/// use rcn_spec::zoo::TestAndSet;
/// use std::sync::Arc;
///
/// // Test-and-set cannot do it — exactly Golab's result:
/// assert!(solve_recoverable(Arc::new(TestAndSet::new()), vec![0, 1]).is_err());
/// ```
pub fn solve_recoverable(
    ty: Arc<dyn ObjectType + Send + Sync>,
    inputs: Vec<u32>,
) -> Result<System, PlanError> {
    TournamentConsensus::try_new(ty, inputs)
}

/// Exhaustively model-checks a consensus system: agreement, validity and
/// recoverable wait-freedom under unconstrained crashes.
///
/// # Errors
///
/// Returns [`ExploreError`] if the state space exceeds `max_configs`.
pub fn verify(system: &System, max_configs: usize) -> Result<Verdict, ExploreError> {
    rcn_valency::check_consensus(system, max_configs).map(|r| r.verdict)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcn_spec::zoo::{StickyBit, Tnn};

    #[test]
    fn solve_and_verify_sticky_bit() {
        let sys = solve_recoverable(Arc::new(StickyBit::new()), vec![0, 1]).unwrap();
        assert!(verify(&sys, 1_000_000).unwrap().is_correct());
    }

    #[test]
    fn readable_tnn_solves_two_processes() {
        let sys = solve_recoverable(Arc::new(Tnn::new(3, 2)), vec![1, 0]).unwrap();
        assert!(verify(&sys, 1_000_000).unwrap().is_correct());
    }

    #[test]
    fn verify_reports_state_space_limits() {
        let sys = solve_recoverable(Arc::new(StickyBit::new()), vec![0, 1]).unwrap();
        assert!(verify(&sys, 2).is_err());
    }
}
