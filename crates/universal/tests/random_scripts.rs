//! Property-based testing of the scripted universal construction: random
//! small scripts over random zoo objects, each verified *exhaustively* by
//! the configuration-graph checker. This is a model-checking fuzzer: every
//! proptest case is itself an exhaustive verification.

use proptest::prelude::*;
use rcn_model::{drive, CrashBudget, CrashyAdversary};
use rcn_spec::zoo::{BoundedQueue, FetchAndAdd, Register, Swap};
use rcn_spec::{ObjectType, OpId, ValueId};
use rcn_universal::{verify_scripted, ScriptedSim};
use std::sync::Arc;

fn check_scripts(sim: Arc<dyn ObjectType + Send + Sync>, scripts: Vec<Vec<OpId>>) {
    let sys = ScriptedSim::system(sim.clone(), ValueId::new(0), scripts.clone());
    let report = verify_scripted(&sys, &*sim, ValueId::new(0), &scripts, 5_000_000)
        .expect("state space fits");
    assert!(
        report.is_linearizable(),
        "scripts {scripts:?}: {:?}",
        report.violation
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random 2-process register scripts (writes + reads) are always
    /// linearizable.
    #[test]
    fn register_scripts_linearize(
        s0 in prop::collection::vec(0u16..3, 1..3),
        s1 in prop::collection::vec(0u16..3, 1..3),
    ) {
        let reg = Register::new(2); // ops: write(0), write(1), read
        let scripts = vec![
            s0.into_iter().map(OpId::new).collect(),
            s1.into_iter().map(OpId::new).collect(),
        ];
        check_scripts(Arc::new(reg), scripts);
    }

    /// Random queue scripts (enq/deq mixes) are always linearizable.
    #[test]
    fn queue_scripts_linearize(
        s0 in prop::collection::vec(0u16..3, 1..3),
        s1 in prop::collection::vec(0u16..3, 1..2),
    ) {
        let q = BoundedQueue::new(2, 3); // ops: enq(0), enq(1), deq
        let scripts = vec![
            s0.into_iter().map(OpId::new).collect(),
            s1.into_iter().map(OpId::new).collect(),
        ];
        check_scripts(Arc::new(q), scripts);
    }

    /// Random swap scripts are always linearizable.
    #[test]
    fn swap_scripts_linearize(
        s0 in prop::collection::vec(0u16..3, 1..3),
        s1 in prop::collection::vec(0u16..3, 1..2),
    ) {
        let sw = Swap::new(2); // ops: swap(0), swap(1), read
        let scripts = vec![
            s0.into_iter().map(OpId::new).collect(),
            s1.into_iter().map(OpId::new).collect(),
        ];
        check_scripts(Arc::new(sw), scripts);
    }

    /// Randomized crashy drives of a counter always account for every
    /// increment (the log loses nothing under any seed).
    #[test]
    fn counter_increments_always_sum(seed in 0u64..500, len0 in 1usize..3, len1 in 1usize..3) {
        let faa = FetchAndAdd::new(16);
        let inc = OpId::new(0);
        let scripts = vec![vec![inc; len0], vec![inc; len1]];
        let sys = ScriptedSim::system(Arc::new(faa), ValueId::new(0), scripts);
        let mut adv = CrashyAdversary::new(seed, 0.3, CrashBudget::new(1, 2));
        let report = drive(&sys, &mut adv, 50_000);
        prop_assert!(report.all_decided);
        // Total increments = len0 + len1; the largest response is the
        // old value of the last increment.
        let max = report
            .config
            .decided
            .iter()
            .flatten()
            .max()
            .copied()
            .unwrap();
        prop_assert_eq!(max as usize, len0 + len1 - 1);
    }
}
