//! Multi-shot universal simulation: every process applies a whole *script*
//! of operations to the simulated object.
//!
//! Compared to the one-shot [`UniversalSim`](crate::UniversalSim), the log
//! has `n · m` consensus slots (each process wins once per scripted
//! operation) and no announcement registers: scripts are static, so a
//! slot's operation is derivable from the log alone — winner `w`'s `j`-th
//! win runs `script[w][j]`. That makes crash recovery a pure log rescan:
//! the recovering process replays the log from the start, rebuilding its
//! win count, the simulated object's value, and its own last response.
//!
//! (The fully dynamic construction — operations chosen at run time — needs
//! the announcement indirection of the one-shot version; the scripted form
//! trades that generality for a construction whose entire recovery story is
//! "recompute everything from the persistent log".)

use rcn_model::{Action, HeapLayout, LocalState, ObjectId, ProcessId, Program, System};
use rcn_spec::zoo::MultiConsensus;
use rcn_spec::{ObjectType, OpId, Response, ValueId};
use std::fmt;
use std::sync::Arc;

const STAGE_READ: u32 = 0;
const STAGE_PROPOSE: u32 = 1;
const STAGE_DONE: u32 = 2;

/// The scripted (multi-shot) universal simulation.
///
/// # Examples
///
/// Two processes each enqueue twice into a simulated queue; all four
/// enqueues linearize.
///
/// ```
/// use rcn_model::{drive, RoundRobin};
/// use rcn_spec::zoo::BoundedQueue;
/// use rcn_spec::ValueId;
/// use rcn_universal::ScriptedSim;
/// use std::sync::Arc;
///
/// let q = BoundedQueue::new(2, 4);
/// let scripts = vec![
///     vec![q.enq_op(0), q.enq_op(0)],
///     vec![q.enq_op(1), q.enq_op(1)],
/// ];
/// let sys = ScriptedSim::system(Arc::new(q), ValueId::new(0), scripts);
/// let report = drive(&sys, &mut RoundRobin::new(), 10_000);
/// assert!(report.all_decided);
/// ```
pub struct ScriptedSim {
    sim: Arc<dyn ObjectType + Send + Sync>,
    initial: ValueId,
    scripts: Vec<Vec<OpId>>,
    slots: Vec<ObjectId>,
    mc: MultiConsensus,
}

impl ScriptedSim {
    /// Builds the system: process `i` applies `scripts[i]` in order.
    ///
    /// # Panics
    ///
    /// Panics if any script is empty, any op is out of range, or `initial`
    /// is out of range.
    pub fn system(
        sim: Arc<dyn ObjectType + Send + Sync>,
        initial: ValueId,
        scripts: Vec<Vec<OpId>>,
    ) -> System {
        let n = scripts.len();
        assert!(n >= 1, "need at least one process");
        assert!(
            initial.index() < sim.num_values(),
            "initial value out of range"
        );
        for script in &scripts {
            assert!(!script.is_empty(), "scripts must be nonempty");
            for op in script {
                assert!(op.index() < sim.num_ops(), "script op out of range");
            }
        }
        let total_slots: usize = scripts.iter().map(Vec::len).sum();
        let mut layout = HeapLayout::new();
        let mc = MultiConsensus::new(n);
        let slots: Vec<ObjectId> = (0..total_slots)
            .map(|k| layout.add_object(format!("S{k}"), Arc::new(mc), ValueId::new(0)))
            .collect();
        let program = ScriptedSim {
            sim,
            initial,
            scripts,
            slots,
            mc,
        };
        // Outputs are per-process responses, not consensus decisions.
        System::new_unchecked(Arc::new(program), Arc::new(layout), vec![0; n])
    }

    /// Local state: `[stage, k, sim_value, last_resp, counts[0..n]]`.
    fn state(stage: u32, k: u32, value: u32, last: u32, counts: &[u32]) -> LocalState {
        let mut words = vec![stage, k, value, last];
        words.extend_from_slice(counts);
        LocalState::from_words(words)
    }

    fn counts(state: &LocalState) -> &[u32] {
        &state.words()[4..]
    }

    /// Advances the local replay with the decided winner of slot `k`.
    fn absorb(&self, me: usize, state: &LocalState, winner: usize) -> LocalState {
        let k = state.word(1);
        let value = ValueId(state.word(2) as u16);
        let mut counts = Self::counts(state).to_vec();
        let j = counts[winner] as usize;
        let op = self.scripts[winner][j];
        counts[winner] += 1;
        let out = self.sim.apply(value, op);
        let mut last = state.word(3);
        if winner == me {
            last = out.response.index() as u32;
        }
        let done = winner == me && counts[me] as usize == self.scripts[me].len();
        let stage = if done { STAGE_DONE } else { STAGE_READ };
        Self::state(stage, k + 1, out.next.index() as u32, last, &counts)
    }
}

impl Program for ScriptedSim {
    fn name(&self) -> String {
        format!("scripted-universal<{}>", self.sim.name())
    }

    fn initial_state(&self, _pid: ProcessId, _input: u32) -> LocalState {
        Self::state(
            STAGE_READ,
            0,
            self.initial.index() as u32,
            0,
            &vec![0; self.scripts.len()],
        )
    }

    fn action(&self, pid: ProcessId, state: &LocalState) -> Action {
        let k = state.word(1) as usize;
        match state.word(0) {
            STAGE_READ => Action::Invoke {
                object: self.slots[k],
                op: self.mc.read_op_id(),
            },
            STAGE_PROPOSE => Action::Invoke {
                object: self.slots[k],
                op: self.mc.propose_op(pid.index()),
            },
            _ => Action::Output(state.word(3)),
        }
    }

    fn transition(&self, pid: ProcessId, state: &LocalState, response: Response) -> LocalState {
        let me = pid.index();
        match state.word(0) {
            STAGE_READ => {
                if response == self.mc.undecided_response() {
                    // My script cannot be finished (I output at my last
                    // win), so proposing is always legal here.
                    Self::state(
                        STAGE_PROPOSE,
                        state.word(1),
                        state.word(2),
                        state.word(3),
                        Self::counts(state),
                    )
                } else {
                    self.absorb(me, state, response.index())
                }
            }
            STAGE_PROPOSE => self.absorb(me, state, response.index()),
            other => panic!("no transition in stage {other}"),
        }
    }
}

impl fmt::Debug for ScriptedSim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScriptedSim")
            .field("sim", &self.sim.name())
            .field("scripts", &self.scripts)
            .finish()
    }
}

/// Exhaustively checks the scripted simulation: in every reachable
/// configuration, the decided slots form a prefix, no process exceeds its
/// script length, and every output matches the log replay.
///
/// # Errors
///
/// Returns the exploration error if the state space exceeds `max_configs`.
pub fn verify_scripted(
    system: &System,
    sim: &(dyn ObjectType + Send + Sync),
    initial: ValueId,
    scripts: &[Vec<OpId>],
    max_configs: usize,
) -> Result<crate::SimReport, rcn_valency::ExploreError> {
    let graph = rcn_valency::ConfigGraph::explore(system, max_configs)?;
    let n = scripts.len();
    for id in 0..graph.len() {
        let config = graph.config(id);
        // Decode the log (slots are the only objects, in order).
        let mut winners = Vec::new();
        let mut seen_undecided = false;
        for v in &config.values {
            match v.index() {
                0 => seen_undecided = true,
                w => {
                    if seen_undecided {
                        return Ok(crate::SimReport {
                            configs: graph.len(),
                            violation: Some(crate::SimViolation::NonPrefixLog { config: id }),
                        });
                    }
                    winners.push(w - 1);
                }
            }
        }
        // Win counts within script bounds + replay responses.
        let mut counts = vec![0usize; n];
        let mut value = initial;
        let mut last_resp: Vec<Option<u32>> = vec![None; n];
        for &w in &winners {
            if counts[w] >= scripts[w].len() {
                return Ok(crate::SimReport {
                    configs: graph.len(),
                    violation: Some(crate::SimViolation::DuplicateWinner {
                        config: id,
                        process: ProcessId(w as u16),
                    }),
                });
            }
            let out = sim.apply(value, scripts[w][counts[w]]);
            value = out.next;
            counts[w] += 1;
            last_resp[w] = Some(out.response.index() as u32);
        }
        for i in 0..n {
            if let Some(actual) = config.decided[i] {
                if last_resp[i] != Some(actual) || counts[i] != scripts[i].len() {
                    return Ok(crate::SimReport {
                        configs: graph.len(),
                        violation: Some(crate::SimViolation::WrongResponse {
                            config: id,
                            process: ProcessId(i as u16),
                            expected: last_resp[i].unwrap_or(u32::MAX),
                            actual,
                        }),
                    });
                }
            }
        }
    }
    Ok(crate::SimReport {
        configs: graph.len(),
        violation: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcn_model::{drive, CrashBudget, CrashyAdversary};
    use rcn_spec::zoo::{BoundedQueue, FetchAndAdd};

    #[test]
    fn two_enqueuers_two_ops_each_verify() {
        let q = BoundedQueue::new(2, 4);
        let scripts = vec![
            vec![q.enq_op(0), q.enq_op(0)],
            vec![q.enq_op(1), q.enq_op(1)],
        ];
        let sys = ScriptedSim::system(Arc::new(q.clone()), ValueId::new(0), scripts.clone());
        let report = verify_scripted(&sys, &q, ValueId::new(0), &scripts, 50_000_000).unwrap();
        assert!(report.is_linearizable(), "{:?}", report.violation);
    }

    #[test]
    fn enq_deq_interleavings_verify() {
        let q = BoundedQueue::new(2, 2);
        let scripts = vec![vec![q.enq_op(1), q.deq_op()], vec![q.enq_op(0)]];
        let sys = ScriptedSim::system(Arc::new(q.clone()), ValueId::new(0), scripts.clone());
        let report = verify_scripted(&sys, &q, ValueId::new(0), &scripts, 50_000_000).unwrap();
        assert!(report.is_linearizable(), "{:?}", report.violation);
    }

    #[test]
    fn counter_increments_all_land() {
        // Two processes increment a fetch&add counter twice each: the final
        // value is 4 regardless of interleaving or crashes.
        let faa = FetchAndAdd::new(8);
        let inc = OpId::new(0);
        let scripts = vec![vec![inc, inc], vec![inc, inc]];
        let sys = ScriptedSim::system(Arc::new(faa), ValueId::new(0), scripts.clone());
        for seed in 0..15 {
            let mut adv = CrashyAdversary::new(seed, 0.3, CrashBudget::new(1, 2));
            let report = drive(&sys, &mut adv, 50_000);
            assert!(report.all_decided, "seed {seed}");
            // Replay: the last incrementer saw 3, so outputs include 3.
            let outs: Vec<u32> = (0..2).map(|i| report.config.decided[i].unwrap()).collect();
            assert!(outs.contains(&3), "seed {seed}: {outs:?}");
            // Every slot decided.
            assert!(report.config.values.iter().all(|v| v.index() != 0));
        }
    }

    #[test]
    fn crash_rescan_rebuilds_win_counts() {
        let faa = FetchAndAdd::new(8);
        let inc = OpId::new(0);
        let scripts = vec![vec![inc, inc], vec![inc]];
        let sys = ScriptedSim::system(Arc::new(faa), ValueId::new(0), scripts);
        let mut config = sys.initial_config();
        // p0 wins slot 0 (read ⊥, propose), then crashes.
        sys.run(&mut config, &"p0 p0 c0".parse().unwrap());
        // p0 solo: rescan finds its win at slot 0, continues, wins slot 1
        // and 2… wait, p1 never ran, so p0 takes slots 1 too (script len 2)
        // and outputs its second response: it saw 0 then 1.
        let out = sys.run_solo(&mut config, ProcessId::new(0), 100);
        assert_eq!(out, Some(1));
    }

    #[test]
    #[should_panic(expected = "scripts must be nonempty")]
    fn empty_scripts_are_rejected() {
        ScriptedSim::system(Arc::new(FetchAndAdd::new(4)), ValueId::new(0), vec![vec![]]);
    }
}
