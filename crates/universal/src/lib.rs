//! # rcn-universal — a recoverable universal construction
//!
//! The paper (§1) recalls that recoverable consensus is *universal*: any
//! object can be implemented in a recoverable wait-free manner using
//! objects of recoverable consensus number ≥ n plus registers
//! (Delporte-Gallet–Fatourou–Fauconnier–Ruppert 2022, after Herlihy 1991
//! and Berryhill–Golab–Tripunitara 2016). This crate implements the
//! one-shot form of that construction and verifies it:
//!
//! * each of the `n` processes applies **one** operation of its choice to a
//!   simulated object of any deterministic [`ObjectType`];
//! * the shared state is a log of `n` consensus slots
//!   ([`MultiConsensus`] over process ids) plus an announcement register
//!   per process;
//! * a process announces its operation, scans the log, proposes itself at
//!   the first undecided slot, and — once placed — locally replays the
//!   winners' operations to compute its own response.
//!
//! **Crash-recovery for free:** consensus slots absorb duplicate proposals,
//! so a crashed process simply rescans the log; if its previous incarnation
//! already won a slot, the scan finds it (this is exactly the *at-most-once
//! despite crashes* service that recoverable consensus provides, and why
//! the recoverable consensus number governs what can be built).
//!
//! The construction's guarantees — the decided slots form a prefix, slot
//! winners are distinct, every response matches the unique log
//! linearization — are checked exhaustively over the configuration graph in
//! [`verify_simulation`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod scripted;

pub use scripted::{verify_scripted, ScriptedSim};

use rcn_model::{
    Action, Configuration, HeapLayout, LocalState, ObjectId, ProcessId, Program, System,
};
use rcn_spec::zoo::{MultiConsensus, Register};
use rcn_spec::{ObjectType, OpId, Response, ValueId};
use std::fmt;
use std::sync::Arc;

/// Stage codes (word 1 of the local state).
const STAGE_ANNOUNCE: u32 = 0;
const STAGE_READ_SLOT: u32 = 1;
const STAGE_PROPOSE: u32 = 2;
const STAGE_READ_ANNOUNCE: u32 = 3;
const STAGE_DONE: u32 = 4;

/// The one-shot universal simulation of a deterministic object.
///
/// Build with [`UniversalSim::system`]; each process's *input* is the op id
/// (of the simulated type) it wants to apply, and its *output* is the
/// response id it receives.
///
/// # Examples
///
/// Simulate a bounded queue: two processes enqueue concurrently; both
/// operations linearize and both get `ok` back.
///
/// ```
/// use rcn_model::{drive, RoundRobin};
/// use rcn_spec::zoo::BoundedQueue;
/// use rcn_spec::{ObjectType, ValueId};
/// use rcn_universal::UniversalSim;
/// use std::sync::Arc;
///
/// let q = BoundedQueue::new(2, 3);
/// let enq0 = q.enq_op(0).index() as u32;
/// let enq1 = q.enq_op(1).index() as u32;
/// let sys = UniversalSim::system(Arc::new(q), ValueId::new(0), vec![enq0, enq1]);
/// let mut rr = RoundRobin::new();
/// let report = drive(&sys, &mut rr, 1_000);
/// assert!(report.all_decided);
/// ```
pub struct UniversalSim {
    sim: Arc<dyn ObjectType + Send + Sync>,
    initial: ValueId,
    n: usize,
    announce: Vec<ObjectId>,
    slots: Vec<ObjectId>,
    mc: MultiConsensus,
    announce_reg: Register,
}

impl UniversalSim {
    /// Builds the simulation system: `inputs[i]` is the op id process `i`
    /// applies to the simulated object.
    ///
    /// # Panics
    ///
    /// Panics if any input op id is out of range for the simulated type, or
    /// `initial` is out of range.
    pub fn system(
        sim: Arc<dyn ObjectType + Send + Sync>,
        initial: ValueId,
        inputs: Vec<u32>,
    ) -> System {
        let n = inputs.len();
        assert!(n >= 1, "need at least one process");
        assert!(
            initial.index() < sim.num_values(),
            "initial value out of range"
        );
        for &op in &inputs {
            assert!((op as usize) < sim.num_ops(), "input op out of range");
        }
        let mut layout = HeapLayout::new();
        // Announcement registers: domain = num_ops + 1, initial ⊥.
        let announce_reg = Register::new(sim.num_ops() + 1);
        let announce: Vec<ObjectId> = (0..n)
            .map(|i| {
                layout.add_object(
                    format!("A{i}"),
                    Arc::new(announce_reg.clone()),
                    ValueId::new(sim.num_ops() as u16),
                )
            })
            .collect();
        // Consensus slots over process ids.
        let mc = MultiConsensus::new(n);
        let slots: Vec<ObjectId> = (0..n)
            .map(|k| layout.add_object(format!("S{k}"), Arc::new(mc), ValueId::new(0)))
            .collect();
        let program = UniversalSim {
            sim,
            initial,
            n,
            announce,
            slots,
            mc,
            announce_reg,
        };
        // Outputs are per-process responses, not consensus decisions.
        System::new_unchecked(Arc::new(program), Arc::new(layout), inputs)
    }

    /// Local state layout: `[my_op, stage, k, temp, winner_op_0, …,
    /// winner_op_{k-1}]`.
    fn state(my_op: u32, stage: u32, k: u32, temp: u32, ops: &[u32]) -> LocalState {
        let mut words = vec![my_op, stage, k, temp];
        words.extend_from_slice(ops);
        LocalState::from_words(words)
    }

    fn ops_of(state: &LocalState) -> &[u32] {
        &state.words()[4..]
    }

    /// Replays the winners' ops and then `my_op`, returning my response.
    fn replay_response(&self, ops: &[u32], my_op: u32) -> Response {
        let mut value = self.initial;
        for &op in ops {
            value = self.sim.apply(value, OpId(op as u16)).next;
        }
        self.sim.apply(value, OpId(my_op as u16)).response
    }
}

impl Program for UniversalSim {
    fn name(&self) -> String {
        format!("universal<{}>", self.sim.name())
    }

    fn initial_state(&self, _pid: ProcessId, input: u32) -> LocalState {
        Self::state(input, STAGE_ANNOUNCE, 0, 0, &[])
    }

    fn action(&self, pid: ProcessId, state: &LocalState) -> Action {
        let me = pid.index();
        let k = state.word(2) as usize;
        match state.word(1) {
            STAGE_ANNOUNCE => Action::Invoke {
                object: self.announce[me],
                // Register write(op) has op id = op.
                op: OpId(state.word(0) as u16),
            },
            STAGE_READ_SLOT => Action::Invoke {
                object: self.slots[k],
                op: self.mc.read_op_id(),
            },
            STAGE_PROPOSE => Action::Invoke {
                object: self.slots[k],
                op: self.mc.propose_op(me),
            },
            STAGE_READ_ANNOUNCE => Action::Invoke {
                object: self.announce[state.word(3) as usize],
                op: OpId(self.announce_reg.domain() as u16), // register read
            },
            _ => Action::Output(state.word(3)),
        }
    }

    fn transition(&self, pid: ProcessId, state: &LocalState, response: Response) -> LocalState {
        let me = pid.index() as u32;
        let my_op = state.word(0);
        let k = state.word(2);
        let ops = Self::ops_of(state);
        match state.word(1) {
            STAGE_ANNOUNCE => Self::state(my_op, STAGE_READ_SLOT, 0, 0, &[]),
            STAGE_READ_SLOT => {
                if response == self.mc.undecided_response() {
                    Self::state(my_op, STAGE_PROPOSE, k, 0, ops)
                } else {
                    self.after_decided(me, my_op, k, response.index() as u32, ops)
                }
            }
            STAGE_PROPOSE => self.after_decided(me, my_op, k, response.index() as u32, ops),
            STAGE_READ_ANNOUNCE => {
                // response = the winner's announced op.
                debug_assert!(
                    response.index() < self.sim.num_ops(),
                    "winner must have announced before proposing"
                );
                let mut new_ops = ops.to_vec();
                new_ops.push(response.index() as u32);
                Self::state(my_op, STAGE_READ_SLOT, k + 1, 0, &new_ops)
            }
            other => panic!("no transition in stage {other}"),
        }
    }
}

impl UniversalSim {
    fn after_decided(&self, me: u32, my_op: u32, k: u32, winner: u32, ops: &[u32]) -> LocalState {
        if winner == me {
            // Placed: compute my response locally and output it.
            let resp = self.replay_response(ops, my_op);
            Self::state(my_op, STAGE_DONE, k, resp.index() as u32, ops)
        } else {
            Self::state(my_op, STAGE_READ_ANNOUNCE, k, winner, ops)
        }
    }
}

impl fmt::Debug for UniversalSim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UniversalSim")
            .field("sim", &self.sim.name())
            .field("n", &self.n)
            .finish()
    }
}

/// What [`verify_simulation`] found wrong, if anything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimViolation {
    /// The decided slots do not form a prefix of the log.
    NonPrefixLog {
        /// Configuration index in the explored graph.
        config: usize,
    },
    /// Two slots were won by the same process.
    DuplicateWinner {
        /// Configuration index.
        config: usize,
        /// The duplicated process.
        process: ProcessId,
    },
    /// A process's output differs from the log replay.
    WrongResponse {
        /// Configuration index.
        config: usize,
        /// The process with the wrong output.
        process: ProcessId,
        /// What the replay expects.
        expected: u32,
        /// What the process output.
        actual: u32,
    },
}

impl fmt::Display for SimViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimViolation::NonPrefixLog { config } => {
                write!(f, "decided slots are not a prefix (config {config})")
            }
            SimViolation::DuplicateWinner { config, process } => {
                write!(f, "{process} won two slots (config {config})")
            }
            SimViolation::WrongResponse {
                config,
                process,
                expected,
                actual,
            } => write!(
                f,
                "{process} output {actual}, log replay expects {expected} (config {config})"
            ),
        }
    }
}

/// Report of an exhaustive simulation check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimReport {
    /// Number of configurations explored.
    pub configs: usize,
    /// The first violation found, if any.
    pub violation: Option<SimViolation>,
}

impl SimReport {
    /// Returns `true` if no violation was found.
    pub fn is_linearizable(&self) -> bool {
        self.violation.is_none()
    }
}

/// Exhaustively checks the one-shot universal simulation: explores every
/// configuration reachable under steps and crashes and verifies, in each,
/// that (a) decided slots form a prefix, (b) slot winners are distinct, and
/// (c) every output matches the replay of the decided log.
///
/// Note: this checks *linearizability of the one-shot simulation*, not the
/// consensus conditions (processes legitimately output different
/// responses), which is why it does not reuse `rcn-valency`'s consensus
/// checker.
///
/// # Errors
///
/// Returns the exploration error if the state space exceeds `max_configs`.
pub fn verify_simulation(
    system: &System,
    sim: &(dyn ObjectType + Send + Sync),
    initial: ValueId,
    max_configs: usize,
) -> Result<SimReport, rcn_valency::ExploreError> {
    let graph = rcn_valency::ConfigGraph::explore(system, max_configs)?;
    let n = system.n();
    for id in 0..graph.len() {
        let config = graph.config(id);
        if let Some(v) = check_config(system, sim, initial, n, id, config) {
            return Ok(SimReport {
                configs: graph.len(),
                violation: Some(v),
            });
        }
    }
    Ok(SimReport {
        configs: graph.len(),
        violation: None,
    })
}

fn check_config(
    system: &System,
    sim: &(dyn ObjectType + Send + Sync),
    initial: ValueId,
    n: usize,
    id: usize,
    config: &Configuration,
) -> Option<SimViolation> {
    // Objects: announce 0..n, slots n..2n (layout order in `system`).
    let slot_value = |k: usize| config.values[n + k].index();
    // (a) prefix property.
    let mut seen_undecided = false;
    let mut winners = Vec::new();
    for k in 0..n {
        match slot_value(k) {
            0 => seen_undecided = true,
            w => {
                if seen_undecided {
                    return Some(SimViolation::NonPrefixLog { config: id });
                }
                winners.push(w - 1);
            }
        }
    }
    // (b) distinct winners.
    for (a, &w) in winners.iter().enumerate() {
        if winners[..a].contains(&w) {
            return Some(SimViolation::DuplicateWinner {
                config: id,
                process: ProcessId(w as u16),
            });
        }
    }
    // (c) outputs match replay.
    let mut value = initial;
    let mut responses: Vec<Option<u32>> = vec![None; n];
    for &w in &winners {
        let op = config.values[w].index(); // announce register of w
        if op >= sim.num_ops() {
            // Winner without an announcement would be a protocol bug; the
            // replay cannot proceed, so flag it via WrongResponse below.
            break;
        }
        let out = sim.apply(value, OpId(op as u16));
        value = out.next;
        responses[w] = Some(out.response.index() as u32);
    }
    for (i, response) in responses.iter().enumerate() {
        if let Some(actual) = system.decided_value(config, ProcessId(i as u16)) {
            match *response {
                Some(expected) if expected == actual => {}
                Some(expected) => {
                    return Some(SimViolation::WrongResponse {
                        config: id,
                        process: ProcessId(i as u16),
                        expected,
                        actual,
                    })
                }
                None => {
                    // Decided without winning a slot: impossible.
                    return Some(SimViolation::WrongResponse {
                        config: id,
                        process: ProcessId(i as u16),
                        expected: u32::MAX,
                        actual,
                    });
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcn_model::{drive, CrashBudget, CrashyAdversary, RoundRobin};
    use rcn_spec::zoo::{BoundedQueue, BoundedStack, Register as Reg, TestAndSet};

    #[test]
    fn queue_simulation_is_linearizable_under_crashes() {
        let q = BoundedQueue::new(2, 3);
        let inputs = vec![q.enq_op(0).index() as u32, q.enq_op(1).index() as u32];
        let sys = UniversalSim::system(Arc::new(q.clone()), ValueId::new(0), inputs);
        let report = verify_simulation(&sys, &q, ValueId::new(0), 10_000_000).unwrap();
        assert!(report.is_linearizable(), "{:?}", report.violation);
        assert!(report.configs > 10);
    }

    #[test]
    fn enq_deq_simulation_is_linearizable() {
        let q = BoundedQueue::new(2, 2);
        let inputs = vec![q.enq_op(1).index() as u32, q.deq_op().index() as u32];
        let sys = UniversalSim::system(Arc::new(q.clone()), ValueId::new(0), inputs);
        let report = verify_simulation(&sys, &q, ValueId::new(0), 10_000_000).unwrap();
        assert!(report.is_linearizable(), "{:?}", report.violation);
    }

    #[test]
    fn three_process_stack_simulation_is_linearizable() {
        let s = BoundedStack::new(2, 3);
        let inputs = vec![
            s.push_op(0).index() as u32,
            s.push_op(1).index() as u32,
            s.pop_op().index() as u32,
        ];
        let sys = UniversalSim::system(Arc::new(s.clone()), ValueId::new(0), inputs);
        let report = verify_simulation(&sys, &s, ValueId::new(0), 50_000_000).unwrap();
        assert!(report.is_linearizable(), "{:?}", report.violation);
    }

    #[test]
    fn tas_simulation_has_one_winner_in_every_run() {
        let tas = TestAndSet::new();
        let inputs = vec![0u32, 0];
        let sys = UniversalSim::system(Arc::new(tas), ValueId::new(0), inputs);
        // Drive concrete runs: exactly one process must see response 0.
        for seed in 0..20 {
            let mut adv = CrashyAdversary::new(seed, 0.3, CrashBudget::new(1, 2));
            let report = drive(&sys, &mut adv, 10_000);
            assert!(report.all_decided, "seed {seed}");
            let outputs: Vec<u32> = (0..2)
                .map(|i| report.config.decided[i].expect("decided"))
                .collect();
            let zeros = outputs.iter().filter(|&&r| r == 0).count();
            assert_eq!(zeros, 1, "seed {seed}: outputs {outputs:?}");
        }
    }

    #[test]
    fn register_simulation_round_robin() {
        let reg = Reg::new(3);
        // p0 writes 2, p1 reads.
        let inputs = vec![
            reg.write_op(2).index() as u32,
            reg.read_op().unwrap().index() as u32,
        ];
        let sys = UniversalSim::system(Arc::new(reg.clone()), ValueId::new(0), inputs);
        let report = drive(&sys, &mut RoundRobin::new(), 1_000);
        assert!(report.all_decided);
        // Round-robin: p0 wins slot 0 (write, acked), p1's read sees 2.
        assert_eq!(report.config.decided[0], Some(3)); // "ack" response id
        assert_eq!(report.config.decided[1], Some(2));
    }

    #[test]
    fn crashed_winner_rediscovers_its_slot() {
        let tas = TestAndSet::new();
        let sys = UniversalSim::system(Arc::new(tas), ValueId::new(0), vec![0, 0]);
        let mut config = sys.initial_config();
        // p0: announce, read slot0 (⊥), propose (wins) … then crashes.
        sys.run(&mut config, &"p0 p0 p0 c0".parse().unwrap());
        // p0 re-runs solo: must re-find its win and output response 0.
        let out = sys.run_solo(&mut config, ProcessId::new(0), 100);
        assert_eq!(out, Some(0));
        // p1 then gets response 1 (the bit is set).
        let out = sys.run_solo(&mut config, ProcessId::new(1), 100);
        assert_eq!(out, Some(1));
    }

    #[test]
    #[should_panic(expected = "input op out of range")]
    fn out_of_range_input_is_rejected() {
        let tas = TestAndSet::new();
        UniversalSim::system(Arc::new(tas), ValueId::new(0), vec![7]);
    }
}
