//! Process programs: deterministic per-process code.
//!
//! Paper, §2: *"An algorithm defines a set of objects, an initial value for
//! each of these objects, and an initial state for each process.
//! Furthermore, for every state of every process, an algorithm defines the
//! next step that process will apply."* A step is an operation on a shared
//! object, or a no-op when the process is in an output state.
//!
//! A [`Program`] is that per-process state machine. Local state is an opaque
//! hashable word vector ([`LocalState`]); when a process crashes the
//! executor resets its local state to [`Program::initial_state`] — the input
//! survives the crash (it is part of the initial state), everything else is
//! lost, exactly as in the paper's model of individual crashes.

use crate::heap::ObjectId;
use crate::schedule::ProcessId;
use rcn_spec::{OpId, Response};
use std::fmt;

/// The volatile local state of a process: an opaque word vector.
///
/// The representation is deliberately dumb — cheap to clone, hash and
/// compare — because the model checker stores millions of them. Programs
/// define their own encoding; `LocalState` just carries the words.
///
/// # Examples
///
/// ```
/// use rcn_model::LocalState;
/// let s = LocalState::from_words([1, 2]);
/// assert_eq!(s.word(0), 1);
/// assert_eq!(s.words(), &[1, 2]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LocalState(Vec<u32>);

impl LocalState {
    /// Creates a state from words.
    pub fn from_words(words: impl IntoIterator<Item = u32>) -> Self {
        LocalState(words.into_iter().collect())
    }

    /// A single-word state.
    pub fn word1(w: u32) -> Self {
        LocalState(vec![w])
    }

    /// A two-word state.
    pub fn word2(a: u32, b: u32) -> Self {
        LocalState(vec![a, b])
    }

    /// The word at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn word(&self, i: usize) -> u32 {
        self.0[i]
    }

    /// All words.
    pub fn words(&self) -> &[u32] {
        &self.0
    }
}

impl fmt::Display for LocalState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "⟨{}⟩",
            self.0
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(",")
        )
    }
}

/// What a process does when it next takes a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// Apply `op` to the shared object `object`.
    Invoke {
        /// The target object.
        object: ObjectId,
        /// The operation to apply.
        op: OpId,
    },
    /// The process is in an output state for `value`; its steps are no-ops.
    Output(u32),
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Invoke { object, op } => write!(f, "invoke {op} on {object}"),
            Action::Output(v) => write!(f, "output {v}"),
        }
    }
}

/// A deterministic per-process program for a task with private inputs.
///
/// The executor drives the program as follows, for process `pid` with input
/// `input`:
///
/// 1. the process starts (and restarts after every crash) in
///    [`initial_state`](Program::initial_state)`(pid, input)`;
/// 2. when scheduled, the process performs [`action`](Program::action) of
///    its current state: an [`Action::Invoke`] applies an operation and the
///    state advances via [`transition`](Program::transition) on the
///    response; an [`Action::Output`] is a no-op step (the process has
///    decided);
/// 3. a crash resets the local state to step 1 — shared objects keep their
///    values.
///
/// Implementations must be deterministic: both `action` and `transition`
/// must be pure functions.
pub trait Program: Send + Sync {
    /// A short name for reports.
    fn name(&self) -> String;

    /// The initial (and post-crash) state of `pid` with input `input`.
    fn initial_state(&self, pid: ProcessId, input: u32) -> LocalState;

    /// What `pid` does next in `state`.
    fn action(&self, pid: ProcessId, state: &LocalState) -> Action;

    /// The new state after the invocation of [`Action::Invoke`] returned
    /// `response`.
    ///
    /// Only called when `action(pid, state)` is an `Invoke`.
    fn transition(&self, pid: ProcessId, state: &LocalState, response: Response) -> LocalState;
}

/// A trivial program that immediately outputs its input. Used as a baseline
/// and in tests: it solves consensus if and only if all inputs are equal.
#[derive(Debug, Clone, Copy, Default)]
pub struct OutputInput;

impl Program for OutputInput {
    fn name(&self) -> String {
        "output-input".into()
    }

    fn initial_state(&self, _pid: ProcessId, input: u32) -> LocalState {
        LocalState::word1(input)
    }

    fn action(&self, _pid: ProcessId, state: &LocalState) -> Action {
        Action::Output(state.word(0))
    }

    fn transition(&self, _pid: ProcessId, state: &LocalState, _response: Response) -> LocalState {
        state.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_state_constructors_agree() {
        assert_eq!(LocalState::word1(3), LocalState::from_words([3]));
        assert_eq!(LocalState::word2(1, 2), LocalState::from_words([1, 2]));
        assert_eq!(LocalState::word2(1, 2).to_string(), "⟨1,2⟩");
    }

    #[test]
    fn output_input_is_immediately_decided() {
        let prog = OutputInput;
        let s = prog.initial_state(ProcessId::new(0), 1);
        assert_eq!(prog.action(ProcessId::new(0), &s), Action::Output(1));
    }

    #[test]
    fn action_display() {
        let a = Action::Invoke {
            object: ObjectId::new(0),
            op: OpId::new(2),
        };
        assert_eq!(a.to_string(), "invoke op2 on obj0");
        assert_eq!(Action::Output(1).to_string(), "output 1");
    }
}
