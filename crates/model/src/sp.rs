//! Enumeration of the schedule sets `S(P′)` of §2.
//!
//! Paper, §2: *"For all `P′ ⊆ {p_0,…,p_{n−1}}`, define `S(P′)` as the set of
//! schedules that contain at most one instance of every process in `P′`."*
//! For instance `S({p_0, p_2}) = {⟨⟩, p0, p2, p0 p2, p2 p0}`.
//!
//! These are the (crash-free) schedules over which the *n-discerning* and
//! *n-recording* conditions quantify. Their number is
//! `Σ_k k! · C(|P′|, k)`, which is manageable for the process counts the
//! deciders handle (`n ≤ 8` or so); callers that only need reachability use
//! the BFS in `rcn-decide` instead of full enumeration.

use crate::schedule::{ProcessId, Schedule};

/// Enumerates every schedule in `S(P′)`: all sequences of *distinct*
/// processes from `procs`, including the empty one.
///
/// The order is: by length, then lexicographically by choice order.
///
/// # Examples
///
/// ```
/// use rcn_model::{s_p, ProcessId};
/// let procs = [ProcessId::new(0), ProcessId::new(2)];
/// let schedules = s_p(&procs);
/// let shown: Vec<String> = schedules.iter().map(|s| s.to_string()).collect();
/// assert_eq!(shown, vec!["⟨⟩", "p0", "p2", "p0 p2", "p2 p0"]);
/// ```
pub fn s_p(procs: &[ProcessId]) -> Vec<Schedule> {
    let mut out = Vec::with_capacity(s_p_len(procs.len()));
    let mut current = Vec::new();
    let mut used = vec![false; procs.len()];
    out.push(Schedule::new());
    for len in 1..=procs.len() {
        enumerate_rec(procs, len, &mut current, &mut used, &mut out);
    }
    out
}

fn enumerate_rec(
    procs: &[ProcessId],
    len: usize,
    current: &mut Vec<ProcessId>,
    used: &mut [bool],
    out: &mut Vec<Schedule>,
) {
    if current.len() == len {
        out.push(Schedule::of_steps(current.iter().copied()));
        return;
    }
    for i in 0..procs.len() {
        if !used[i] {
            used[i] = true;
            current.push(procs[i]);
            enumerate_rec(procs, len, current, used, out);
            current.pop();
            used[i] = false;
        }
    }
}

/// The size of `S(P′)` for `|P′| = k`: `Σ_{j=0}^{k} k!/(k−j)!`.
///
/// # Examples
///
/// ```
/// use rcn_model::s_p_len;
/// assert_eq!(s_p_len(2), 5); // the paper's S({p_0, p_2}) example
/// assert_eq!(s_p_len(3), 16);
/// ```
pub fn s_p_len(k: usize) -> usize {
    let mut total = 1usize; // the empty schedule
    let mut falling = 1usize;
    for j in 1..=k {
        falling *= k + 1 - j;
        total += falling;
    }
    total
}

/// Enumerates the *nonempty* schedules in `S(P′)` that begin with a process
/// from `first_team`.
///
/// This is the quantification inside the `U_x` sets of the *n-recording*
/// definition: schedules whose first process is on team `x`.
pub fn s_p_first_in(procs: &[ProcessId], first_team: &[ProcessId]) -> Vec<Schedule> {
    s_p(procs)
        .into_iter()
        .filter(|s| {
            s.events()
                .first()
                .and_then(|e| e.process())
                .is_some_and(|p| first_team.contains(&p))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pids(ids: &[u16]) -> Vec<ProcessId> {
        ids.iter().map(|&i| ProcessId(i)).collect()
    }

    #[test]
    fn matches_paper_example() {
        let schedules = s_p(&pids(&[0, 2]));
        let shown: Vec<String> = schedules.iter().map(ToString::to_string).collect();
        assert_eq!(shown, vec!["⟨⟩", "p0", "p2", "p0 p2", "p2 p0"]);
    }

    #[test]
    fn sizes_match_formula() {
        for k in 0..6 {
            let procs = pids(&(0..k as u16).collect::<Vec<_>>());
            assert_eq!(s_p(&procs).len(), s_p_len(k), "k={k}");
        }
        assert_eq!(s_p_len(0), 1);
        assert_eq!(s_p_len(5), 326);
        assert_eq!(s_p_len(6), 1957);
    }

    #[test]
    fn schedules_have_distinct_processes() {
        for s in s_p(&pids(&[0, 1, 2, 3])) {
            let mut seen = std::collections::HashSet::new();
            for e in s.iter() {
                assert!(seen.insert(e.process().unwrap()), "duplicate in {s}");
                assert!(!e.is_crash());
            }
        }
    }

    #[test]
    fn first_in_filters_on_first_process() {
        let procs = pids(&[0, 1, 2]);
        let team = pids(&[1]);
        let filtered = s_p_first_in(&procs, &team);
        assert!(!filtered.is_empty());
        for s in &filtered {
            assert_eq!(s.events()[0].process(), Some(ProcessId(1)));
        }
        // Complement check: p1-first schedules of 3 processes = 1 + 2 + 2 = 5.
        assert_eq!(filtered.len(), 5);
    }

    #[test]
    fn no_schedules_are_duplicated() {
        let all = s_p(&pids(&[0, 1, 2, 3]));
        let set: std::collections::HashSet<_> = all.iter().cloned().collect();
        assert_eq!(set.len(), all.len());
    }
}
