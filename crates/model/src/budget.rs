//! The crash-budgeted execution sets `E_z(C)` and `E_z*(C)` of §3.
//!
//! Paper, §3: *"define `E_z(C)` as the set of all executions α from C that
//! contain no crashes by `p_0` and in which, for every process
//! `p_i ∈ {p_1,…,p_{n−1}}`, the number of crashes by `p_i` is no greater
//! than `z·n` times the number of steps collectively taken by
//! `p_0,…,p_{i−1}` in α. Define `E_z*(C) ⊂ E_z(C)` as the set of all
//! executions α … in which, for every process `p_i` … and every prefix α′
//! of α, the number of crashes by `p_i` is no greater than `z·n` times the
//! number of steps collectively taken by `p_0,…,p_{i−1}` in α′."*
//!
//! `E_z*` is prefix-closed, `E_z` is not (the paper's example:
//! `exec(C, p1 c1 p0) ∈ E_1(C)` for n = 2, but `p1 c1` alone over-spends).
//!
//! Only the *schedule* matters for membership (which events occur, not what
//! they do), so membership is defined on [`Schedule`]s.

use crate::schedule::{Event, ProcessId, Schedule};
use serde::{Deserialize, Serialize};

/// The two flavours of crash budget from §3 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BudgetKind {
    /// `E_z(C)`: the budget must hold at the end of the execution.
    Final,
    /// `E_z*(C)`: the budget must hold at every prefix (prefix-closed).
    EveryPrefix,
}

/// A crash budget `E_z` / `E_z*` for `n` processes with multiplier `z`.
///
/// # Examples
///
/// The paper's own example for `n = 2`, `z = 1`:
///
/// ```
/// use rcn_model::{BudgetKind, CrashBudget, Schedule};
/// let budget = CrashBudget::new(1, 2);
/// let sched: Schedule = "p1 c1 p0".parse().unwrap();
/// assert!(budget.admits(&sched, BudgetKind::Final));       // ∈ E_1
/// assert!(!budget.admits(&sched, BudgetKind::EveryPrefix)); // ∉ E_1*
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashBudget {
    z: usize,
    n: usize,
}

impl CrashBudget {
    /// Creates the budget for `n` processes with multiplier `z`.
    ///
    /// # Panics
    ///
    /// Panics if `z == 0` or `n == 0` (the paper always has `z ≥ 1`,
    /// `n ≥ 2`).
    pub fn new(z: usize, n: usize) -> Self {
        assert!(z > 0 && n > 0, "crash budget requires z ≥ 1 and n ≥ 1");
        CrashBudget { z, n }
    }

    /// The multiplier `z`.
    pub fn z(&self) -> usize {
        self.z
    }

    /// The number of processes `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Returns `true` if `schedule` satisfies this budget under the given
    /// [`BudgetKind`].
    pub fn admits(&self, schedule: &Schedule, kind: BudgetKind) -> bool {
        match kind {
            BudgetKind::EveryPrefix => {
                let mut tracker = BudgetTracker::new(*self);
                schedule.iter().all(|event| tracker.admit(event))
            }
            BudgetKind::Final => {
                // Only the totals matter: crashes of p_i vs z·n·(steps of
                // processes with smaller identifiers).
                let mut steps_below = vec![0usize; self.n]; // steps of p_0..p_{i-1}
                let mut crashes = vec![0usize; self.n];
                for event in schedule.iter() {
                    match event {
                        Event::Step(p) => {
                            for entry in steps_below.iter_mut().skip(p.index() + 1) {
                                *entry += 1;
                            }
                        }
                        // A mid-operation crash is a crash of p for budget
                        // purposes; a system-wide crash hits every process
                        // (including p_0, so it is never admissible).
                        Event::Crash(p) | Event::CrashDuring(p) => crashes[p.index()] += 1,
                        Event::SystemCrash => {
                            for c in crashes.iter_mut() {
                                *c += 1;
                            }
                        }
                    }
                }
                if crashes[0] > 0 {
                    return false;
                }
                (1..self.n).all(|i| crashes[i] <= self.z * self.n * steps_below[i])
            }
        }
    }

    /// Convenience: membership in `E_z(C)` (final totals only).
    pub fn admits_final(&self, schedule: &Schedule) -> bool {
        self.admits(schedule, BudgetKind::Final)
    }

    /// Convenience: membership in `E_z*(C)` (every prefix).
    pub fn admits_prefix_closed(&self, schedule: &Schedule) -> bool {
        self.admits(schedule, BudgetKind::EveryPrefix)
    }
}

/// Incremental `E_z*` membership tracker, used by crash-injecting
/// adversaries: events are fed one at a time and rejected events leave the
/// tracker unchanged.
///
/// # Examples
///
/// ```
/// use rcn_model::{BudgetTracker, CrashBudget, Event, ProcessId};
/// let mut t = BudgetTracker::new(CrashBudget::new(1, 2));
/// // p1 may not crash before p0 has taken a step.
/// assert!(!t.admit(Event::Crash(ProcessId::new(1))));
/// assert!(t.admit(Event::Step(ProcessId::new(0))));
/// assert!(t.admit(Event::Crash(ProcessId::new(1))));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetTracker {
    budget: CrashBudget,
    /// `steps_below[i]` = steps taken so far by `p_0,…,p_{i-1}`.
    steps_below: Vec<usize>,
    /// `crashes[i]` = crashes of `p_i` so far.
    crashes: Vec<usize>,
}

impl BudgetTracker {
    /// Starts tracking an empty execution under `budget`.
    pub fn new(budget: CrashBudget) -> Self {
        BudgetTracker {
            budget,
            steps_below: vec![0; budget.n],
            crashes: vec![0; budget.n],
        }
    }

    /// Returns `true` if appending `event` keeps the execution in `E_z*`,
    /// updating the tracker; returns `false` (without updating) otherwise.
    pub fn admit(&mut self, event: Event) -> bool {
        if !self.would_admit(event) {
            return false;
        }
        self.record(event);
        true
    }

    /// Returns `true` if appending `event` would keep the execution in
    /// `E_z*`, without updating the tracker.
    pub fn would_admit(&self, event: Event) -> bool {
        match event {
            Event::Step(_) => true,
            Event::Crash(p) | Event::CrashDuring(p) => {
                let i = p.index();
                i != 0 && self.crashes[i] < self.budget.z * self.budget.n * self.steps_below[i]
            }
            // A system-wide crash crashes p_0, which `E_z` never allows.
            Event::SystemCrash => false,
        }
    }

    /// Records an event unconditionally (useful when replaying a schedule
    /// already known to be admissible).
    pub fn record(&mut self, event: Event) {
        match event {
            Event::Step(p) => {
                for entry in self.steps_below.iter_mut().skip(p.index() + 1) {
                    *entry += 1;
                }
            }
            Event::Crash(p) | Event::CrashDuring(p) => self.crashes[p.index()] += 1,
            Event::SystemCrash => {
                for c in self.crashes.iter_mut() {
                    *c += 1;
                }
            }
        }
    }

    /// Remaining crash allowance of process `p` (`None` for `p_0`, which may
    /// never crash).
    pub fn remaining_crashes(&self, p: ProcessId) -> Option<usize> {
        let i = p.index();
        (i != 0).then(|| self.budget.z * self.budget.n * self.steps_below[i] - self.crashes[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(s: &str) -> Schedule {
        s.parse().unwrap()
    }

    #[test]
    fn p0_never_crashes() {
        let b = CrashBudget::new(1, 2);
        assert!(!b.admits_final(&sched("p1 p0 c0")));
        assert!(!b.admits_prefix_closed(&sched("p1 p0 c0")));
    }

    #[test]
    fn papers_example_distinguishes_final_from_prefix() {
        // exec(C, p1 c1 p0) ∈ E_1(C) but ∉ E_1*(C) for n = 2.
        let b = CrashBudget::new(1, 2);
        let s = sched("p1 c1 p0");
        assert!(b.admits_final(&s));
        assert!(!b.admits_prefix_closed(&s));
    }

    #[test]
    fn prefix_closed_is_subset_of_final() {
        let b = CrashBudget::new(1, 3);
        let candidates = [
            "p0 c1 c1 c1 p1 c2 c2 c2 c2 c2 c2",
            "p0 p1 p2 c2 c1",
            "c1 p0",
            "p0 c2 c2 c2 c2 c2 c2 c2",
            "p2 c2 p0",
        ];
        for text in candidates {
            let s = sched(text);
            if b.admits_prefix_closed(&s) {
                assert!(b.admits_final(&s), "E_z* ⊆ E_z violated by {text}");
            }
        }
    }

    #[test]
    fn budget_scales_with_z_and_n() {
        // One step by p0 allows z·n crashes of p1.
        for (z, n) in [(1, 2), (2, 2), (1, 4)] {
            let b = CrashBudget::new(z, n);
            let mut s = sched("p0");
            for _ in 0..z * n {
                s.push(Event::Crash(ProcessId(1)));
            }
            assert!(b.admits_prefix_closed(&s), "z={z}, n={n}");
            s.push(Event::Crash(ProcessId(1)));
            assert!(!b.admits_prefix_closed(&s), "z={z}, n={n}");
        }
    }

    #[test]
    fn only_lower_id_steps_fund_crashes() {
        let b = CrashBudget::new(1, 3);
        // p2's own steps don't fund its crashes …
        assert!(!b.admits_prefix_closed(&sched("p2 p2 c2")));
        // … but either p0's or p1's do.
        assert!(b.admits_prefix_closed(&sched("p1 c2")));
        assert!(b.admits_prefix_closed(&sched("p0 c2")));
        // And p1 cannot be funded by p2.
        assert!(!b.admits_prefix_closed(&sched("p2 c1")));
    }

    #[test]
    fn crash_free_schedules_are_always_admissible() {
        let b = CrashBudget::new(1, 4);
        let s = sched("p3 p2 p1 p0 p3 p3");
        assert!(b.admits_final(&s));
        assert!(b.admits_prefix_closed(&s));
    }

    #[test]
    fn tracker_matches_batch_check() {
        let b = CrashBudget::new(1, 3);
        let s = sched("p0 c1 p1 c2 c2 c2 p0 c2 c1");
        let mut tracker = BudgetTracker::new(b);
        let all_admitted = s.iter().all(|e| tracker.admit(e));
        assert_eq!(all_admitted, b.admits_prefix_closed(&s));
    }

    #[test]
    fn tracker_rejection_leaves_state_unchanged() {
        let mut t = BudgetTracker::new(CrashBudget::new(1, 2));
        let before = t.clone();
        assert!(!t.admit(Event::Crash(ProcessId(1))));
        assert_eq!(t, before);
    }

    #[test]
    fn remaining_crashes_accounting() {
        let mut t = BudgetTracker::new(CrashBudget::new(1, 2));
        assert_eq!(t.remaining_crashes(ProcessId(0)), None);
        assert_eq!(t.remaining_crashes(ProcessId(1)), Some(0));
        t.record(Event::Step(ProcessId(0)));
        assert_eq!(t.remaining_crashes(ProcessId(1)), Some(2));
        t.record(Event::Crash(ProcessId(1)));
        assert_eq!(t.remaining_crashes(ProcessId(1)), Some(1));
    }
}
