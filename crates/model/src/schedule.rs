//! Processes, events and schedules.
//!
//! Paper, §2: *"A schedule is a sequence of processes and crashes. We use
//! `c_i` to denote a crash by process `p_i`."* Steps are written `p_i`.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A process identifier `p_i`.
///
/// Identifiers matter in this model: the crash budgets of
/// [`crate::budget::CrashBudget`] give processes with *smaller* identifiers
/// higher priority (they are allowed to crash less often), which is the key
/// idea of the paper's valency argument (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcessId(pub u16);

impl ProcessId {
    /// Creates a process id.
    #[inline]
    pub const fn new(index: u16) -> Self {
        ProcessId(index)
    }

    /// Returns the identifier as a `usize`, suitable for array indexing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u16> for ProcessId {
    fn from(index: u16) -> Self {
        ProcessId(index)
    }
}

/// One event of an execution: a step or a crash of some process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Event {
    /// `p_i` takes its next step (applies an operation, or a no-op if it has
    /// already output a value).
    Step(ProcessId),
    /// `c_i`: process `p_i` crashes and is reset to its initial state.
    Crash(ProcessId),
}

impl Event {
    /// The process this event belongs to.
    pub fn process(self) -> ProcessId {
        match self {
            Event::Step(p) | Event::Crash(p) => p,
        }
    }

    /// Returns `true` if this is a crash event.
    pub fn is_crash(self) -> bool {
        matches!(self, Event::Crash(_))
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Step(p) => write!(f, "p{}", p.0),
            Event::Crash(p) => write!(f, "c{}", p.0),
        }
    }
}

/// A schedule: a finite sequence of steps and crashes.
///
/// Schedules compose with `extend`/`push` and render in the paper's
/// notation, e.g. `p0 p1 c1 p0`.
///
/// # Examples
///
/// ```
/// use rcn_model::{Event, ProcessId, Schedule};
/// let sched: Schedule = "p0 p1 c1 p0".parse().unwrap();
/// assert_eq!(sched.len(), 4);
/// assert_eq!(sched[2], Event::Crash(ProcessId::new(1)));
/// assert_eq!(sched.to_string(), "p0 p1 c1 p0");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Schedule(Vec<Event>);

impl Schedule {
    /// Creates an empty schedule (`⟨⟩` in the paper's notation).
    pub fn new() -> Self {
        Schedule(Vec::new())
    }

    /// Creates a schedule from a list of events.
    pub fn from_events(events: impl IntoIterator<Item = Event>) -> Self {
        Schedule(events.into_iter().collect())
    }

    /// A schedule consisting of single steps of the given processes.
    pub fn of_steps(pids: impl IntoIterator<Item = ProcessId>) -> Self {
        Schedule(pids.into_iter().map(Event::Step).collect())
    }

    /// The paper's `λ_k` schedule: `c_k c_{k+1} … c_{n-1}` — every process
    /// with identifier at least `k` crashes once, in identifier order.
    pub fn lambda(k: usize, n: usize) -> Self {
        Schedule((k..n).map(|i| Event::Crash(ProcessId(i as u16))).collect())
    }

    /// Appends an event.
    pub fn push(&mut self, event: Event) {
        self.0.push(event);
    }

    /// Appends all events of another schedule.
    pub fn extend(&mut self, other: &Schedule) {
        self.0.extend_from_slice(&other.0);
    }

    /// Concatenates two schedules.
    #[must_use]
    pub fn concat(&self, other: &Schedule) -> Schedule {
        let mut out = self.clone();
        out.extend(other);
        out
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` if the schedule has no events.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates over the events.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.0.iter().copied()
    }

    /// The events as a slice.
    pub fn events(&self) -> &[Event] {
        &self.0
    }

    /// Number of step events by process `p`.
    pub fn steps_of(&self, p: ProcessId) -> usize {
        self.0
            .iter()
            .filter(|e| matches!(e, Event::Step(q) if *q == p))
            .count()
    }

    /// Number of crash events by process `p`.
    pub fn crashes_of(&self, p: ProcessId) -> usize {
        self.0
            .iter()
            .filter(|e| matches!(e, Event::Crash(q) if *q == p))
            .count()
    }

    /// Returns `true` if the schedule contains any event of process `p`.
    pub fn contains_process(&self, p: ProcessId) -> bool {
        self.0.iter().any(|e| e.process() == p)
    }

    /// Returns `true` if the schedule contains no crash events.
    pub fn is_crash_free(&self) -> bool {
        !self.0.iter().any(|e| e.is_crash())
    }
}

impl std::ops::Index<usize> for Schedule {
    type Output = Event;

    fn index(&self, i: usize) -> &Event {
        &self.0[i]
    }
}

impl FromIterator<Event> for Schedule {
    fn from_iter<I: IntoIterator<Item = Event>>(iter: I) -> Self {
        Schedule(iter.into_iter().collect())
    }
}

impl Extend<Event> for Schedule {
    fn extend<I: IntoIterator<Item = Event>>(&mut self, iter: I) {
        self.0.extend(iter);
    }
}

impl IntoIterator for Schedule {
    type Item = Event;
    type IntoIter = std::vec::IntoIter<Event>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

impl<'a> IntoIterator for &'a Schedule {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "⟨⟩");
        }
        let parts: Vec<String> = self.0.iter().map(ToString::to_string).collect();
        write!(f, "{}", parts.join(" "))
    }
}

/// Error parsing a [`Schedule`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseScheduleError {
    token: String,
}

impl fmt::Display for ParseScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid schedule token `{}`", self.token)
    }
}

impl std::error::Error for ParseScheduleError {}

impl FromStr for Schedule {
    type Err = ParseScheduleError;

    /// Parses the paper's notation: whitespace-separated `p<i>` (step) and
    /// `c<i>` (crash) tokens; `⟨⟩` or an empty string is the empty schedule.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() || s == "⟨⟩" {
            return Ok(Schedule::new());
        }
        let mut events = Vec::new();
        for token in s.split_whitespace() {
            let err = || ParseScheduleError {
                token: token.to_string(),
            };
            let (kind, rest) = token.split_at(1);
            let id: u16 = rest.parse().map_err(|_| err())?;
            match kind {
                "p" => events.push(Event::Step(ProcessId(id))),
                "c" => events.push(Event::Crash(ProcessId(id))),
                _ => return Err(err()),
            }
        }
        Ok(Schedule(events))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        let text = "p0 p1 c1 p0 c2";
        let sched: Schedule = text.parse().unwrap();
        assert_eq!(sched.to_string(), text);
        assert_eq!(sched.len(), 5);
    }

    #[test]
    fn empty_schedule_renders_brackets() {
        let sched = Schedule::new();
        assert_eq!(sched.to_string(), "⟨⟩");
        assert_eq!("⟨⟩".parse::<Schedule>().unwrap(), sched);
        assert_eq!("".parse::<Schedule>().unwrap(), sched);
    }

    #[test]
    fn invalid_tokens_are_rejected() {
        assert!("x0".parse::<Schedule>().is_err());
        assert!("p".parse::<Schedule>().is_err());
        assert!("pq".parse::<Schedule>().is_err());
    }

    #[test]
    fn lambda_matches_paper_definition() {
        // λ_k = c_k c_{k+1} … c_{n-1}
        let l = Schedule::lambda(2, 5);
        assert_eq!(l.to_string(), "c2 c3 c4");
        assert!(Schedule::lambda(5, 5).is_empty());
    }

    #[test]
    fn counting_helpers() {
        let sched: Schedule = "p0 p1 c1 p1 c1 p0".parse().unwrap();
        assert_eq!(sched.steps_of(ProcessId(0)), 2);
        assert_eq!(sched.steps_of(ProcessId(1)), 2);
        assert_eq!(sched.crashes_of(ProcessId(1)), 2);
        assert_eq!(sched.crashes_of(ProcessId(0)), 0);
        assert!(sched.contains_process(ProcessId(1)));
        assert!(!sched.contains_process(ProcessId(2)));
        assert!(!sched.is_crash_free());
        assert!("p0 p1".parse::<Schedule>().unwrap().is_crash_free());
    }

    #[test]
    fn concat_and_extend_agree() {
        let a: Schedule = "p0 p1".parse().unwrap();
        let b: Schedule = "c1 p0".parse().unwrap();
        let mut c = a.clone();
        c.extend(&b);
        assert_eq!(a.concat(&b), c);
        assert_eq!(c.to_string(), "p0 p1 c1 p0");
    }

    #[test]
    fn schedule_collects_from_iterator() {
        let sched: Schedule = (0..3).map(|i| Event::Step(ProcessId(i))).collect();
        assert_eq!(sched.to_string(), "p0 p1 p2");
    }
}
