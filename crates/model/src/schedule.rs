//! Processes, events and schedules.
//!
//! Paper, §2: *"A schedule is a sequence of processes and crashes. We use
//! `c_i` to denote a crash by process `p_i`."* Steps are written `p_i`.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A process identifier `p_i`.
///
/// Identifiers matter in this model: the crash budgets of
/// [`crate::budget::CrashBudget`] give processes with *smaller* identifiers
/// higher priority (they are allowed to crash less often), which is the key
/// idea of the paper's valency argument (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcessId(pub u16);

impl ProcessId {
    /// Creates a process id.
    #[inline]
    pub const fn new(index: u16) -> Self {
        ProcessId(index)
    }

    /// Returns the identifier as a `usize`, suitable for array indexing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u16> for ProcessId {
    fn from(index: u16) -> Self {
        ProcessId(index)
    }
}

/// One event of an execution: a step or a crash.
///
/// The paper's §2 model has only `Step`/`Crash` (individual crash–recovery:
/// the crashed process loses its volatile state, shared objects persist).
/// The two extra variants cover neighbouring points of the crash-model
/// design space:
///
/// * [`Event::SystemCrash`] — Golab's *simultaneous* crash failures: every
///   process resets at once (shared objects still persist).
/// * [`Event::CrashDuring`] — the DFFR'22 mid-operation crash. A crash that
///   strikes while an operation is in flight is ambiguous: the operation
///   either linearizes (takes effect on the object, but the response is
///   lost with the crashed process's volatile state) or is lost entirely.
///   The *lost* resolution is indistinguishable from an ordinary
///   [`Event::Crash`] immediately before the invocation, so it is encoded
///   as one; `CrashDuring(p)` denotes the *linearized* resolution.
///   Explorers branch on both events to cover the nondeterminism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Event {
    /// `p_i` takes its next step (applies an operation, or a no-op if it has
    /// already output a value).
    Step(ProcessId),
    /// `c_i`: process `p_i` crashes and is reset to its initial state.
    Crash(ProcessId),
    /// `C`: every process crashes simultaneously and is reset to its
    /// initial state (system-wide crash; shared objects persist).
    SystemCrash,
    /// `d_i`: process `p_i` crashes mid-operation and the pending operation
    /// *linearizes* — the object is updated, but the response is lost and
    /// `p_i` is reset to its initial state. If `p_i` has no operation in
    /// flight this degenerates to an ordinary crash.
    CrashDuring(ProcessId),
}

impl Event {
    /// The single process this event belongs to, or `None` for a
    /// system-wide crash (which belongs to every process at once).
    pub fn process(self) -> Option<ProcessId> {
        match self {
            Event::Step(p) | Event::Crash(p) | Event::CrashDuring(p) => Some(p),
            Event::SystemCrash => None,
        }
    }

    /// Returns `true` if this is a crash event of any kind (individual,
    /// system-wide, or mid-operation).
    pub fn is_crash(self) -> bool {
        matches!(
            self,
            Event::Crash(_) | Event::SystemCrash | Event::CrashDuring(_)
        )
    }

    /// Returns `true` if this event involves process `p` (a step or crash
    /// of `p`; a system-wide crash involves every process).
    pub fn involves(self, p: ProcessId) -> bool {
        match self {
            Event::SystemCrash => true,
            _ => self.process() == Some(p),
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Step(p) => write!(f, "p{}", p.0),
            Event::Crash(p) => write!(f, "c{}", p.0),
            Event::SystemCrash => write!(f, "C"),
            Event::CrashDuring(p) => write!(f, "d{}", p.0),
        }
    }
}

/// Which crash events an adversary may schedule.
///
/// Each flag independently enables one family of crash events; steps are
/// always allowed. The four named models exposed on the CLI
/// (`--fault-model per-process|system|mid-op|all`) are [`FaultModel::PER_PROCESS`]
/// (the paper's §2 model and the default), [`FaultModel::SYSTEM`] (only
/// Golab-style simultaneous crashes), [`FaultModel::MID_OP`] (individual
/// crashes that may also strike mid-operation — both resolutions of the
/// DFFR'22 ambiguity are reachable), and [`FaultModel::ALL`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FaultModel {
    /// Individual crashes `c_i` (the paper's model).
    pub per_process: bool,
    /// Simultaneous system-wide crashes `C`.
    pub system_wide: bool,
    /// Mid-operation crashes `d_i` (the linearized resolution; the lost
    /// resolution needs `per_process` to be reachable).
    pub mid_operation: bool,
}

impl FaultModel {
    /// The paper's §2 model: individual crashes only. The default.
    pub const PER_PROCESS: FaultModel = FaultModel {
        per_process: true,
        system_wide: false,
        mid_operation: false,
    };

    /// Golab's simultaneous-crash variant: only system-wide crashes.
    pub const SYSTEM: FaultModel = FaultModel {
        per_process: false,
        system_wide: true,
        mid_operation: false,
    };

    /// DFFR'22 mid-operation crashes on top of individual ones (so both
    /// the linearized and the lost resolution of a mid-operation crash are
    /// reachable).
    pub const MID_OP: FaultModel = FaultModel {
        per_process: true,
        system_wide: false,
        mid_operation: true,
    };

    /// Every crash family at once.
    pub const ALL: FaultModel = FaultModel {
        per_process: true,
        system_wide: true,
        mid_operation: true,
    };

    /// Returns `true` if this model admits `event` into a schedule.
    pub fn allows(self, event: Event) -> bool {
        match event {
            Event::Step(_) => true,
            Event::Crash(_) => self.per_process,
            Event::SystemCrash => self.system_wide,
            Event::CrashDuring(_) => self.mid_operation,
        }
    }

    /// A short stable token naming the model, used in cache keys and bench
    /// record names: the canonical names for the four CLI models, and a
    /// `pp+sys+mid`-style flag list for any other combination.
    pub fn key(self) -> String {
        self.to_string()
    }
}

impl Default for FaultModel {
    fn default() -> Self {
        FaultModel::PER_PROCESS
    }
}

impl fmt::Display for FaultModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultModel::PER_PROCESS => write!(f, "per-process"),
            FaultModel::SYSTEM => write!(f, "system"),
            FaultModel::MID_OP => write!(f, "mid-op"),
            FaultModel::ALL => write!(f, "all"),
            FaultModel {
                per_process,
                system_wide,
                mid_operation,
            } => {
                let mut parts = Vec::new();
                if per_process {
                    parts.push("pp");
                }
                if system_wide {
                    parts.push("sys");
                }
                if mid_operation {
                    parts.push("mid");
                }
                if parts.is_empty() {
                    parts.push("none");
                }
                write!(f, "{}", parts.join("+"))
            }
        }
    }
}

/// Error parsing a [`FaultModel`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFaultModelError {
    token: String,
}

impl fmt::Display for ParseFaultModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid fault model `{}` (expected per-process, system, mid-op or all)",
            self.token
        )
    }
}

impl std::error::Error for ParseFaultModelError {}

impl FromStr for FaultModel {
    type Err = ParseFaultModelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "per-process" => Ok(FaultModel::PER_PROCESS),
            "system" => Ok(FaultModel::SYSTEM),
            "mid-op" => Ok(FaultModel::MID_OP),
            "all" => Ok(FaultModel::ALL),
            other => Err(ParseFaultModelError {
                token: other.to_string(),
            }),
        }
    }
}

/// A schedule: a finite sequence of steps and crashes.
///
/// Schedules compose with `extend`/`push` and render in the paper's
/// notation, e.g. `p0 p1 c1 p0`.
///
/// # Examples
///
/// ```
/// use rcn_model::{Event, ProcessId, Schedule};
/// let sched: Schedule = "p0 p1 c1 p0".parse().unwrap();
/// assert_eq!(sched.len(), 4);
/// assert_eq!(sched[2], Event::Crash(ProcessId::new(1)));
/// assert_eq!(sched.to_string(), "p0 p1 c1 p0");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Schedule(Vec<Event>);

impl Schedule {
    /// Creates an empty schedule (`⟨⟩` in the paper's notation).
    pub fn new() -> Self {
        Schedule(Vec::new())
    }

    /// Creates a schedule from a list of events.
    pub fn from_events(events: impl IntoIterator<Item = Event>) -> Self {
        Schedule(events.into_iter().collect())
    }

    /// A schedule consisting of single steps of the given processes.
    pub fn of_steps(pids: impl IntoIterator<Item = ProcessId>) -> Self {
        Schedule(pids.into_iter().map(Event::Step).collect())
    }

    /// The paper's `λ_k` schedule: `c_k c_{k+1} … c_{n-1}` — every process
    /// with identifier at least `k` crashes once, in identifier order.
    pub fn lambda(k: usize, n: usize) -> Self {
        Schedule((k..n).map(|i| Event::Crash(ProcessId(i as u16))).collect())
    }

    /// Appends an event.
    pub fn push(&mut self, event: Event) {
        self.0.push(event);
    }

    /// Appends all events of another schedule.
    pub fn extend(&mut self, other: &Schedule) {
        self.0.extend_from_slice(&other.0);
    }

    /// Concatenates two schedules.
    #[must_use]
    pub fn concat(&self, other: &Schedule) -> Schedule {
        let mut out = self.clone();
        out.extend(other);
        out
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` if the schedule has no events.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates over the events.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.0.iter().copied()
    }

    /// The events as a slice.
    pub fn events(&self) -> &[Event] {
        &self.0
    }

    /// Number of step events by process `p`.
    pub fn steps_of(&self, p: ProcessId) -> usize {
        self.0
            .iter()
            .filter(|e| matches!(e, Event::Step(q) if *q == p))
            .count()
    }

    /// Number of crash events hitting process `p` (individual crashes
    /// `c_p`, mid-operation crashes `d_p`, and system-wide crashes, which
    /// hit every process).
    pub fn crashes_of(&self, p: ProcessId) -> usize {
        self.0
            .iter()
            .filter(|e| e.is_crash() && e.involves(p))
            .count()
    }

    /// Returns `true` if the schedule contains any event involving process
    /// `p` (a system-wide crash involves every process).
    pub fn contains_process(&self, p: ProcessId) -> bool {
        self.0.iter().any(|e| e.involves(p))
    }

    /// Returns `true` if the schedule contains no crash events.
    pub fn is_crash_free(&self) -> bool {
        !self.0.iter().any(|e| e.is_crash())
    }
}

impl std::ops::Index<usize> for Schedule {
    type Output = Event;

    fn index(&self, i: usize) -> &Event {
        &self.0[i]
    }
}

impl FromIterator<Event> for Schedule {
    fn from_iter<I: IntoIterator<Item = Event>>(iter: I) -> Self {
        Schedule(iter.into_iter().collect())
    }
}

impl Extend<Event> for Schedule {
    fn extend<I: IntoIterator<Item = Event>>(&mut self, iter: I) {
        self.0.extend(iter);
    }
}

impl IntoIterator for Schedule {
    type Item = Event;
    type IntoIter = std::vec::IntoIter<Event>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

impl<'a> IntoIterator for &'a Schedule {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "⟨⟩");
        }
        let parts: Vec<String> = self.0.iter().map(ToString::to_string).collect();
        write!(f, "{}", parts.join(" "))
    }
}

/// Error parsing a [`Schedule`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseScheduleError {
    token: String,
}

impl fmt::Display for ParseScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid schedule token `{}`", self.token)
    }
}

impl std::error::Error for ParseScheduleError {}

impl FromStr for Schedule {
    type Err = ParseScheduleError;

    /// Parses the paper's notation: whitespace-separated `p<i>` (step),
    /// `c<i>` (crash) and `d<i>` (mid-operation crash, linearized
    /// resolution) tokens, plus a bare `C` for a system-wide crash; `⟨⟩` or
    /// an empty string is the empty schedule.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() || s == "⟨⟩" {
            return Ok(Schedule::new());
        }
        let mut events = Vec::new();
        for token in s.split_whitespace() {
            let err = || ParseScheduleError {
                token: token.to_string(),
            };
            if token == "C" {
                events.push(Event::SystemCrash);
                continue;
            }
            let (kind, rest) = token.split_at(1);
            let id: u16 = rest.parse().map_err(|_| err())?;
            match kind {
                "p" => events.push(Event::Step(ProcessId(id))),
                "c" => events.push(Event::Crash(ProcessId(id))),
                "d" => events.push(Event::CrashDuring(ProcessId(id))),
                _ => return Err(err()),
            }
        }
        Ok(Schedule(events))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        let text = "p0 p1 c1 p0 c2";
        let sched: Schedule = text.parse().unwrap();
        assert_eq!(sched.to_string(), text);
        assert_eq!(sched.len(), 5);
    }

    #[test]
    fn empty_schedule_renders_brackets() {
        let sched = Schedule::new();
        assert_eq!(sched.to_string(), "⟨⟩");
        assert_eq!("⟨⟩".parse::<Schedule>().unwrap(), sched);
        assert_eq!("".parse::<Schedule>().unwrap(), sched);
    }

    #[test]
    fn invalid_tokens_are_rejected() {
        assert!("x0".parse::<Schedule>().is_err());
        assert!("p".parse::<Schedule>().is_err());
        assert!("pq".parse::<Schedule>().is_err());
        assert!("d".parse::<Schedule>().is_err());
        assert!("CC".parse::<Schedule>().is_err());
        assert!("C0".parse::<Schedule>().is_err());
    }

    #[test]
    fn extended_fault_events_round_trip() {
        let text = "p0 C d1 c1 p2 C d0";
        let sched: Schedule = text.parse().unwrap();
        assert_eq!(sched.to_string(), text);
        assert_eq!(sched[1], Event::SystemCrash);
        assert_eq!(sched[2], Event::CrashDuring(ProcessId(1)));
        assert_eq!(sched.len(), 7);
        // Round-trip through Display again.
        assert_eq!(sched.to_string().parse::<Schedule>().unwrap(), sched);
    }

    #[test]
    fn extended_events_classify_as_crashes() {
        assert!(Event::SystemCrash.is_crash());
        assert!(Event::CrashDuring(ProcessId(0)).is_crash());
        assert_eq!(Event::SystemCrash.process(), None);
        assert_eq!(
            Event::CrashDuring(ProcessId(3)).process(),
            Some(ProcessId(3))
        );
        assert!(Event::SystemCrash.involves(ProcessId(7)));
        assert!(!Event::CrashDuring(ProcessId(1)).involves(ProcessId(0)));
        let sched: Schedule = "p0 C d1".parse().unwrap();
        assert!(!sched.is_crash_free());
        assert_eq!(sched.crashes_of(ProcessId(0)), 1); // the system crash
        assert_eq!(sched.crashes_of(ProcessId(1)), 2); // C and d1
        assert!(sched.contains_process(ProcessId(5))); // C involves everyone
    }

    #[test]
    fn fault_model_names_round_trip() {
        for (model, name) in [
            (FaultModel::PER_PROCESS, "per-process"),
            (FaultModel::SYSTEM, "system"),
            (FaultModel::MID_OP, "mid-op"),
            (FaultModel::ALL, "all"),
        ] {
            assert_eq!(model.to_string(), name);
            assert_eq!(name.parse::<FaultModel>().unwrap(), model);
        }
        assert!("sideways".parse::<FaultModel>().is_err());
        assert_eq!(FaultModel::default(), FaultModel::PER_PROCESS);
        // Non-canonical combinations render as a flag list.
        let custom = FaultModel {
            per_process: false,
            system_wide: true,
            mid_operation: true,
        };
        assert_eq!(custom.key(), "sys+mid");
    }

    #[test]
    fn fault_model_gates_events() {
        let step = Event::Step(ProcessId(0));
        let crash = Event::Crash(ProcessId(0));
        let during = Event::CrashDuring(ProcessId(0));
        for model in [
            FaultModel::PER_PROCESS,
            FaultModel::SYSTEM,
            FaultModel::MID_OP,
            FaultModel::ALL,
        ] {
            assert!(model.allows(step), "{model}: steps always allowed");
        }
        assert!(FaultModel::PER_PROCESS.allows(crash));
        assert!(!FaultModel::PER_PROCESS.allows(Event::SystemCrash));
        assert!(!FaultModel::PER_PROCESS.allows(during));
        assert!(!FaultModel::SYSTEM.allows(crash));
        assert!(FaultModel::SYSTEM.allows(Event::SystemCrash));
        assert!(FaultModel::MID_OP.allows(crash));
        assert!(FaultModel::MID_OP.allows(during));
        assert!(!FaultModel::MID_OP.allows(Event::SystemCrash));
        assert!(FaultModel::ALL.allows(Event::SystemCrash));
        assert!(FaultModel::ALL.allows(during));
    }

    #[test]
    fn lambda_matches_paper_definition() {
        // λ_k = c_k c_{k+1} … c_{n-1}
        let l = Schedule::lambda(2, 5);
        assert_eq!(l.to_string(), "c2 c3 c4");
        assert!(Schedule::lambda(5, 5).is_empty());
    }

    #[test]
    fn counting_helpers() {
        let sched: Schedule = "p0 p1 c1 p1 c1 p0".parse().unwrap();
        assert_eq!(sched.steps_of(ProcessId(0)), 2);
        assert_eq!(sched.steps_of(ProcessId(1)), 2);
        assert_eq!(sched.crashes_of(ProcessId(1)), 2);
        assert_eq!(sched.crashes_of(ProcessId(0)), 0);
        assert!(sched.contains_process(ProcessId(1)));
        assert!(!sched.contains_process(ProcessId(2)));
        assert!(!sched.is_crash_free());
        assert!("p0 p1".parse::<Schedule>().unwrap().is_crash_free());
    }

    #[test]
    fn concat_and_extend_agree() {
        let a: Schedule = "p0 p1".parse().unwrap();
        let b: Schedule = "c1 p0".parse().unwrap();
        let mut c = a.clone();
        c.extend(&b);
        assert_eq!(a.concat(&b), c);
        assert_eq!(c.to_string(), "p0 p1 c1 p0");
    }

    #[test]
    fn schedule_collects_from_iterator() {
        let sched: Schedule = (0..3).map(|i| Event::Step(ProcessId(i))).collect();
        assert_eq!(sched.to_string(), "p0 p1 p2");
    }
}
