//! Adversaries: schedulers that decide which process steps or crashes next.
//!
//! Paper, §2: *"An execution is produced by an adversary, who decides which
//! process will take the next step in each configuration. The adversary
//! also decides if and when processes crash."*
//!
//! The crash-injecting adversaries here respect the paper's `E_z*` budgets
//! via [`BudgetTracker`], so the executions they produce are exactly the
//! kind quantified over in the §3 valency argument.

use crate::budget::{BudgetTracker, CrashBudget};
use crate::schedule::{Event, ProcessId, Schedule};
use crate::system::{Configuration, System, Violation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A scheduler: picks the next event given the current configuration.
pub trait Adversary {
    /// Returns the next event, or `None` to stop the execution.
    ///
    /// The adversary may consult the configuration (a *strong* adversary in
    /// the literature's terms — it sees everything).
    fn next_event(&mut self, system: &System, config: &Configuration) -> Option<Event>;
}

fn is_output_state(system: &System, config: &Configuration, p: ProcessId) -> bool {
    matches!(
        system.action_of(config, p),
        crate::program::Action::Output(_)
    )
}

/// Steps processes round-robin and never crashes anyone. Stops once every
/// process has decided.
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    cursor: usize,
}

impl RoundRobin {
    /// Creates a round-robin scheduler starting at `p_0`.
    pub fn new() -> Self {
        RoundRobin { cursor: 0 }
    }
}

impl Adversary for RoundRobin {
    fn next_event(&mut self, system: &System, config: &Configuration) -> Option<Event> {
        let n = system.n();
        for off in 0..n {
            let i = (self.cursor + off) % n;
            let p = ProcessId(i as u16);
            if config.decided[i].is_none() && !is_output_state(system, config, p) {
                self.cursor = (i + 1) % n;
                return Some(Event::Step(p));
            }
        }
        None
    }
}

/// A seeded random adversary that injects crashes within an `E_z*` budget.
///
/// Each event targets a uniformly random undecided process; with probability
/// `crash_prob` the adversary attempts a crash, which is downgraded to a
/// step whenever the budget would be violated (so every produced execution
/// is in `E_z*`).
///
/// # Examples
///
/// ```
/// use rcn_model::{CrashBudget, CrashyAdversary};
/// let adv = CrashyAdversary::new(42, 0.25, CrashBudget::new(1, 3));
/// # let _ = adv;
/// ```
#[derive(Debug, Clone)]
pub struct CrashyAdversary {
    rng: StdRng,
    crash_prob: f64,
    tracker: BudgetTracker,
}

impl CrashyAdversary {
    /// Creates the adversary with a deterministic seed.
    ///
    /// # Panics
    ///
    /// Panics if `crash_prob` is not in `[0, 1]`.
    pub fn new(seed: u64, crash_prob: f64, budget: CrashBudget) -> Self {
        assert!(
            (0.0..=1.0).contains(&crash_prob),
            "crash_prob must be a probability"
        );
        CrashyAdversary {
            rng: StdRng::seed_from_u64(seed),
            crash_prob,
            tracker: BudgetTracker::new(budget),
        }
    }
}

impl Adversary for CrashyAdversary {
    fn next_event(&mut self, system: &System, config: &Configuration) -> Option<Event> {
        let undecided: Vec<ProcessId> = (0..system.n())
            .map(|i| ProcessId(i as u16))
            .filter(|&p| config.decided[p.index()].is_none() && !is_output_state(system, config, p))
            .collect();
        if undecided.is_empty() {
            return None;
        }
        let target = undecided[self.rng.gen_range(0..undecided.len())];
        let crash = Event::Crash(target);
        let event = if self.rng.gen_bool(self.crash_prob) && self.tracker.would_admit(crash) {
            crash
        } else {
            Event::Step(target)
        };
        self.tracker.record(event);
        Some(event)
    }
}

/// The result of [`drive`]-ing a system under an adversary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriveReport {
    /// The schedule that was executed.
    pub schedule: Schedule,
    /// The final configuration.
    pub config: Configuration,
    /// The first safety violation, if any.
    pub violation: Option<Violation>,
    /// Whether every process decided before `max_events` ran out.
    pub all_decided: bool,
}

impl DriveReport {
    /// Returns `true` if the run finished with every process decided on a
    /// single common value and no violation.
    pub fn is_clean_consensus(&self) -> bool {
        self.all_decided && self.violation.is_none() && self.config.outputs().len() == 1
    }
}

/// Drives `system` under `adversary` for at most `max_events` events,
/// stopping early on a violation or when the adversary yields `None`.
///
/// # Examples
///
/// ```
/// use rcn_model::{drive, HeapLayout, OutputInput, RoundRobin, System};
/// use std::sync::Arc;
///
/// let sys = System::new(Arc::new(OutputInput), Arc::new(HeapLayout::new()), vec![1, 1]);
/// let report = drive(&sys, &mut RoundRobin::new(), 100);
/// assert!(report.all_decided);
/// ```
pub fn drive(system: &System, adversary: &mut dyn Adversary, max_events: usize) -> DriveReport {
    let mut config = system.initial_config();
    let mut schedule = Schedule::new();
    let mut violation = None;
    for _ in 0..max_events {
        if config.all_decided() {
            break;
        }
        let Some(event) = adversary.next_event(system, &config) else {
            break;
        };
        schedule.push(event);
        let effect = system.apply(&mut config, event);
        if effect.violation.is_some() {
            violation = effect.violation;
            break;
        }
    }
    // Sweep up decisions for processes sitting in an output state that they
    // reached without a transition (e.g. initial output states).
    for i in 0..system.n() {
        let p = ProcessId(i as u16);
        if config.decided[i].is_none() {
            if let crate::program::Action::Output(v) = system.action_of(&config, p) {
                config.decided[i] = Some(v);
            }
        }
    }
    let all_decided = config.all_decided();
    DriveReport {
        schedule,
        config,
        violation,
        all_decided,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::HeapLayout;
    use crate::program::OutputInput;
    use std::sync::Arc;

    fn trivial(inputs: Vec<u32>) -> System {
        System::new(Arc::new(OutputInput), Arc::new(HeapLayout::new()), inputs)
    }

    /// Reads a register `rounds` times, then outputs the input.
    struct Spinner {
        rounds: u32,
        reg: crate::heap::ObjectId,
    }

    impl crate::program::Program for Spinner {
        fn name(&self) -> String {
            "spinner".into()
        }
        fn initial_state(&self, _pid: ProcessId, input: u32) -> crate::program::LocalState {
            crate::program::LocalState::word2(input, 0)
        }
        fn action(
            &self,
            _pid: ProcessId,
            state: &crate::program::LocalState,
        ) -> crate::program::Action {
            if state.word(1) >= self.rounds {
                crate::program::Action::Output(state.word(0))
            } else {
                crate::program::Action::Invoke {
                    object: self.reg,
                    op: rcn_spec::OpId::new(2), // read op of a binary register
                }
            }
        }
        fn transition(
            &self,
            _pid: ProcessId,
            state: &crate::program::LocalState,
            _response: rcn_spec::Response,
        ) -> crate::program::LocalState {
            crate::program::LocalState::word2(state.word(0), state.word(1) + 1)
        }
    }

    fn spinning(inputs: Vec<u32>, rounds: u32) -> System {
        let mut layout = HeapLayout::new();
        let reg = layout.add_object(
            "R",
            Arc::new(rcn_spec::zoo::Register::new(2)),
            rcn_spec::ValueId::new(0),
        );
        System::new(Arc::new(Spinner { rounds, reg }), Arc::new(layout), inputs)
    }

    #[test]
    fn round_robin_decides_trivial_program() {
        let sys = trivial(vec![1, 1, 1]);
        let report = drive(&sys, &mut RoundRobin::new(), 100);
        assert!(report.all_decided);
        assert!(report.is_clean_consensus());
    }

    #[test]
    fn crashy_adversary_respects_budget() {
        let sys = trivial(vec![0, 1]);
        let budget = CrashBudget::new(1, 2);
        let mut adv = CrashyAdversary::new(7, 0.9, budget);
        let mut config = sys.initial_config();
        let mut schedule = Schedule::new();
        for _ in 0..200 {
            let Some(event) = adv.next_event(&sys, &config) else {
                break;
            };
            schedule.push(event);
            sys.apply(&mut config, event);
        }
        assert!(
            budget.admits_prefix_closed(&schedule),
            "schedule: {schedule}"
        );
    }

    #[test]
    fn crashy_adversary_is_deterministic_per_seed() {
        let sys = spinning(vec![0, 0, 0], 10);
        let budget = CrashBudget::new(1, 3);
        let run = |seed| {
            let mut adv = CrashyAdversary::new(seed, 0.3, budget);
            let mut config = sys.initial_config();
            let mut schedule = Schedule::new();
            for _ in 0..50 {
                match adv.next_event(&sys, &config) {
                    Some(e) => {
                        schedule.push(e);
                        sys.apply(&mut config, e);
                    }
                    None => break,
                }
            }
            schedule
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn crash_prob_is_validated() {
        CrashyAdversary::new(0, 1.5, CrashBudget::new(1, 2));
    }

    #[test]
    fn drive_reports_disagreement_outputs() {
        // Different inputs: OutputInput "decides" differently; drive sweeps
        // up the output states, and the report shows two outputs.
        let sys = trivial(vec![0, 1]);
        let report = drive(&sys, &mut RoundRobin::new(), 10);
        assert_eq!(report.config.outputs(), vec![0, 1]);
        assert!(!report.is_clean_consensus());
    }
}
