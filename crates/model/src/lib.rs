//! # rcn-model — the crash-recovery shared-memory execution model
//!
//! Mechanizes §2–§3 of *"Determining Recoverable Consensus Numbers"*
//! (Ovens, PODC 2024):
//!
//! * [`ProcessId`], [`Event`], [`Schedule`] — steps `p_i` and crashes `c_i`,
//!   parsed and printed in the paper's notation;
//! * [`Program`] / [`System`] / [`Configuration`] — deterministic process
//!   programs over a [`HeapLayout`] of shared objects; crashes reset local
//!   state while shared objects persist (the non-volatile memory model);
//! * [`CrashBudget`] — the execution sets `E_z(C)` / `E_z*(C)` of §3, where
//!   the crashes of `p_i` are funded by the steps of lower-id processes;
//! * [`s_p`] — enumeration of the schedule sets `S(P′)` of §2, which the
//!   *n-discerning* / *n-recording* conditions quantify over;
//! * [`Adversary`] implementations including a budget-respecting crash
//!   injector.
//!
//! ## Quickstart
//!
//! ```
//! use rcn_model::{BudgetKind, CrashBudget, Schedule};
//!
//! // The paper's example (§3, n = 2): p1 crashes before p0 has funded it.
//! let sched: Schedule = "p1 c1 p0".parse().unwrap();
//! let budget = CrashBudget::new(1, 2);
//! assert!(budget.admits(&sched, BudgetKind::Final));        // ∈ E_1(C)
//! assert!(!budget.admits(&sched, BudgetKind::EveryPrefix)); // ∉ E_1*(C)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adversary;
mod budget;
mod execution;
mod heap;
mod program;
mod schedule;
mod sp;
mod system;

pub use adversary::{drive, Adversary, CrashyAdversary, DriveReport, RoundRobin};
pub use budget::{BudgetKind, BudgetTracker, CrashBudget};
pub use execution::Execution;
pub use heap::{HeapLayout, ObjectId};
pub use program::{Action, LocalState, OutputInput, Program};
pub use schedule::{
    Event, FaultModel, ParseFaultModelError, ParseScheduleError, ProcessId, Schedule,
};
pub use sp::{s_p, s_p_first_in, s_p_len};
pub use system::{Configuration, StepEffect, System, Violation};
