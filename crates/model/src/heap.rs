//! The shared-object heap: a set of typed objects with initial values.
//!
//! Algorithms in the paper use objects of the types under study *"along with
//! registers"*; a [`HeapLayout`] holds any mix of both. The layout (types +
//! initial values) is immutable; the mutable part of a configuration is just
//! the vector of current values.

use rcn_spec::{ObjectType, OpId, Outcome, ValueId};
use std::fmt;
use std::sync::Arc;

/// Index of an object in a [`HeapLayout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u16);

impl ObjectId {
    /// Creates an object id.
    #[inline]
    pub const fn new(index: u16) -> Self {
        ObjectId(index)
    }

    /// Returns the dense index as a `usize`.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

struct Slot {
    name: String,
    ty: Arc<dyn ObjectType + Send + Sync>,
    initial: ValueId,
}

/// The immutable layout of a shared-object heap: each object's type, name
/// and initial value.
///
/// # Examples
///
/// ```
/// use rcn_model::HeapLayout;
/// use rcn_spec::{zoo::{Register, TestAndSet}, ValueId};
/// use std::sync::Arc;
///
/// let mut layout = HeapLayout::new();
/// let tas = layout.add_object("T", Arc::new(TestAndSet::new()), ValueId::new(0));
/// let reg = layout.add_object("R0", Arc::new(Register::new(2)), ValueId::new(0));
/// assert_eq!(layout.len(), 2);
/// assert_eq!(layout.name(tas), "T");
/// let mut values = layout.initial_values();
/// let out = layout.apply(&mut values, tas, rcn_spec::OpId::new(0));
/// assert_eq!(out.response.index(), 0);
/// # let _ = reg;
/// ```
#[derive(Default)]
pub struct HeapLayout {
    slots: Vec<Slot>,
}

impl HeapLayout {
    /// Creates an empty layout.
    pub fn new() -> Self {
        HeapLayout { slots: Vec::new() }
    }

    /// Adds an object of the given type with the given initial value,
    /// returning its id.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is out of range for the type.
    pub fn add_object(
        &mut self,
        name: impl Into<String>,
        ty: Arc<dyn ObjectType + Send + Sync>,
        initial: ValueId,
    ) -> ObjectId {
        assert!(
            initial.index() < ty.num_values(),
            "initial value {initial} out of range for {}",
            ty.name()
        );
        let id = ObjectId(self.slots.len() as u16);
        self.slots.push(Slot {
            name: name.into(),
            ty,
            initial,
        });
        id
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` if the layout has no objects.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The type of an object.
    pub fn object_type(&self, id: ObjectId) -> &(dyn ObjectType + Send + Sync) {
        &*self.slots[id.index()].ty
    }

    /// The name an object was registered under.
    pub fn name(&self, id: ObjectId) -> &str {
        &self.slots[id.index()].name
    }

    /// The initial value of an object.
    pub fn initial(&self, id: ObjectId) -> ValueId {
        self.slots[id.index()].initial
    }

    /// The vector of initial values (the heap part of an initial
    /// configuration).
    pub fn initial_values(&self) -> Vec<ValueId> {
        self.slots.iter().map(|s| s.initial).collect()
    }

    /// Applies `op` to object `id` in the mutable value vector `values`,
    /// returning the outcome.
    ///
    /// # Panics
    ///
    /// Panics if `values` has the wrong length.
    pub fn apply(&self, values: &mut [ValueId], id: ObjectId, op: OpId) -> Outcome {
        assert_eq!(values.len(), self.slots.len(), "heap value vector mismatch");
        let slot = &self.slots[id.index()];
        let out = slot.ty.apply(values[id.index()], op);
        values[id.index()] = out.next;
        out
    }

    /// Iterates over all object ids.
    pub fn object_ids(&self) -> impl Iterator<Item = ObjectId> {
        (0..self.slots.len()).map(|i| ObjectId(i as u16))
    }
}

impl fmt::Debug for HeapLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("HeapLayout");
        for (i, slot) in self.slots.iter().enumerate() {
            d.field(
                &format!("obj{i}"),
                &format!(
                    "{} : {} = {}",
                    slot.name,
                    slot.ty.name(),
                    slot.ty.value_name(slot.initial)
                ),
            );
        }
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcn_spec::zoo::{Register, TestAndSet};

    fn layout() -> (HeapLayout, ObjectId, ObjectId) {
        let mut l = HeapLayout::new();
        let a = l.add_object("T", Arc::new(TestAndSet::new()), ValueId::new(0));
        let b = l.add_object("R", Arc::new(Register::new(3)), ValueId::new(1));
        (l, a, b)
    }

    #[test]
    fn layout_records_metadata() {
        let (l, a, b) = layout();
        assert_eq!(l.len(), 2);
        assert_eq!(l.name(a), "T");
        assert_eq!(l.initial(b), ValueId::new(1));
        assert_eq!(l.object_type(a).name(), "test-and-set");
        assert_eq!(l.initial_values(), vec![ValueId::new(0), ValueId::new(1)]);
    }

    #[test]
    fn apply_mutates_only_the_target() {
        let (l, a, b) = layout();
        let mut values = l.initial_values();
        let out = l.apply(&mut values, a, OpId::new(0));
        assert_eq!(out.response.index(), 0);
        assert_eq!(values[a.index()], ValueId::new(1));
        assert_eq!(values[b.index()], ValueId::new(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_initial_value_is_rejected() {
        let mut l = HeapLayout::new();
        l.add_object("T", Arc::new(TestAndSet::new()), ValueId::new(7));
    }

    #[test]
    fn debug_render_mentions_objects() {
        let (l, _, _) = layout();
        let text = format!("{l:?}");
        assert!(text.contains("test-and-set"));
        assert!(text.contains("register"));
    }
}
