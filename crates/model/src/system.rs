//! Configurations and the executor.
//!
//! Paper, §2: *"A configuration of a consensus algorithm consists of a state
//! for each process and a value for each object."* We additionally record
//! each process's first output, so that agreement and validity can be
//! checked on the fly (a crashed process may run again and output again; a
//! conflicting second output is an agreement violation and is reported by
//! the executor).

use crate::heap::{HeapLayout, ObjectId};
use crate::program::{Action, LocalState, Program};
use crate::schedule::{Event, ProcessId, Schedule};
use rcn_spec::{OpId, ValueId};
use std::fmt;
use std::sync::Arc;

/// A configuration: per-process local states, per-object values, and the
/// first output of each process (for checking).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Configuration {
    /// Local state of each process.
    pub states: Vec<LocalState>,
    /// Current value of each object.
    pub values: Vec<ValueId>,
    /// First value output by each process, if any.
    pub decided: Vec<Option<u32>>,
}

impl Configuration {
    /// The number of processes.
    pub fn num_processes(&self) -> usize {
        self.states.len()
    }

    /// Returns `true` if every process has output a value.
    pub fn all_decided(&self) -> bool {
        self.decided.iter().all(Option::is_some)
    }

    /// Returns the set of distinct values output so far.
    pub fn outputs(&self) -> Vec<u32> {
        let mut out: Vec<u32> = self.decided.iter().flatten().copied().collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Returns `true` if `self` and `other` are indistinguishable to every
    /// process in `procs` — i.e. those processes have the same local states
    /// (paper, §2). Object values are *not* compared; combine with
    /// [`objects_equal`](Configuration::objects_equal) for the full
    /// indistinguishability used in the paper's arguments.
    pub fn indistinguishable_to(&self, other: &Configuration, procs: &[ProcessId]) -> bool {
        procs
            .iter()
            .all(|p| self.states[p.index()] == other.states[p.index()])
    }

    /// Returns `true` if all objects have the same values in both
    /// configurations.
    pub fn objects_equal(&self, other: &Configuration) -> bool {
        self.values == other.values
    }
}

impl fmt::Display for Configuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let states: Vec<String> = self.states.iter().map(ToString::to_string).collect();
        let values: Vec<String> = self.values.iter().map(ToString::to_string).collect();
        write!(
            f,
            "states=[{}] values=[{}]",
            states.join(" "),
            values.join(" ")
        )
    }
}

/// A safety violation detected while executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Violation {
    /// Two outputs (possibly by the same process across a crash) differ.
    Agreement {
        /// The process making the later, conflicting output.
        process: ProcessId,
        /// The value it output.
        output: u32,
        /// A previously output value it conflicts with.
        earlier: u32,
    },
    /// An output value is not the input of any process.
    Validity {
        /// The offending process.
        process: ProcessId,
        /// The value it output.
        output: u32,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Agreement {
                process,
                output,
                earlier,
            } => write!(
                f,
                "agreement violated: {process} output {output}, earlier output {earlier}"
            ),
            Violation::Validity { process, output } => {
                write!(
                    f,
                    "validity violated: {process} output {output}, not an input"
                )
            }
        }
    }
}

/// The effect of applying one event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepEffect {
    /// The event that was applied.
    pub event: Event,
    /// The object access performed, if any (`None` for plain crashes and
    /// no-op steps of decided processes; a mid-operation crash records the
    /// linearized access).
    pub access: Option<(ObjectId, OpId)>,
    /// Outputs made by this event, in process-id order. At most one for
    /// steps and individual crashes; a system-wide crash can re-output
    /// several processes at once (programs whose initial state is an output
    /// state).
    pub outputs: Vec<(ProcessId, u32)>,
    /// The first safety violation triggered by this event, if any.
    pub violation: Option<Violation>,
}

/// A complete instance: a program, a heap layout, and per-process inputs.
///
/// The `System` is the executor: it produces the initial configuration and
/// applies events. It is cheap to clone (the layout and program are shared).
///
/// # Examples
///
/// ```
/// use rcn_model::{HeapLayout, OutputInput, System};
/// use std::sync::Arc;
///
/// // Two processes that output their own inputs — "solves" consensus only
/// // when the inputs agree.
/// let sys = System::new(Arc::new(OutputInput), Arc::new(HeapLayout::new()), vec![1, 1]);
/// let mut config = sys.initial_config();
/// let effects = sys.run(&mut config, &"p0 p1".parse().unwrap());
/// assert!(effects.iter().all(|e| e.violation.is_none()));
/// // Solo runs record the decisions:
/// use rcn_model::ProcessId;
/// assert_eq!(sys.run_solo(&mut config, ProcessId::new(0), 10), Some(1));
/// assert_eq!(sys.run_solo(&mut config, ProcessId::new(1), 10), Some(1));
/// assert!(config.all_decided());
/// ```
#[derive(Clone)]
pub struct System {
    program: Arc<dyn Program>,
    layout: Arc<HeapLayout>,
    inputs: Vec<u32>,
    /// Whether outputs are checked against the consensus conditions
    /// (agreement + validity). Tasks whose outputs are not consensus
    /// decisions (e.g. the universal simulation, where each process gets
    /// its own response) disable this.
    consensus_checked: bool,
}

impl System {
    /// Creates a system for `inputs.len()` processes.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    pub fn new(program: Arc<dyn Program>, layout: Arc<HeapLayout>, inputs: Vec<u32>) -> Self {
        assert!(!inputs.is_empty(), "a system needs at least one process");
        System {
            program,
            layout,
            inputs,
            consensus_checked: true,
        }
    }

    /// Like [`new`](Self::new), but outputs are *not* checked against the
    /// consensus conditions — for tasks (such as object simulations) whose
    /// outputs are per-process responses rather than a common decision.
    pub fn new_unchecked(
        program: Arc<dyn Program>,
        layout: Arc<HeapLayout>,
        inputs: Vec<u32>,
    ) -> Self {
        let mut sys = System::new(program, layout, inputs);
        sys.consensus_checked = false;
        sys
    }

    /// Returns `true` if outputs are checked against the consensus
    /// conditions.
    pub fn is_consensus_checked(&self) -> bool {
        self.consensus_checked
    }

    /// The number of processes.
    pub fn n(&self) -> usize {
        self.inputs.len()
    }

    /// The process inputs.
    pub fn inputs(&self) -> &[u32] {
        &self.inputs
    }

    /// The heap layout.
    pub fn layout(&self) -> &HeapLayout {
        &self.layout
    }

    /// A shared handle to the heap layout (used by the threaded runtime).
    pub fn layout_arc(&self) -> Arc<HeapLayout> {
        Arc::clone(&self.layout)
    }

    /// The program.
    pub fn program(&self) -> &dyn Program {
        &*self.program
    }

    /// All process ids.
    pub fn processes(&self) -> Vec<ProcessId> {
        (0..self.n()).map(|i| ProcessId(i as u16)).collect()
    }

    /// The initial configuration: every process in its initial state, every
    /// object at its initial value. A process whose *initial* state is
    /// already an output state has output at time zero (degenerate but
    /// legal programs — e.g. [`OutputInput`](crate::OutputInput) — do
    /// this), so its decision is recorded immediately.
    pub fn initial_config(&self) -> Configuration {
        let states: Vec<LocalState> = self
            .inputs
            .iter()
            .enumerate()
            .map(|(i, &input)| self.program.initial_state(ProcessId(i as u16), input))
            .collect();
        let decided = states
            .iter()
            .enumerate()
            .map(
                |(i, state)| match self.program.action(ProcessId(i as u16), state) {
                    Action::Output(v) => Some(v),
                    Action::Invoke { .. } => None,
                },
            )
            .collect();
        Configuration {
            states,
            values: self.layout.initial_values(),
            decided,
        }
    }

    /// Checks the recorded decisions of a configuration against the
    /// consensus conditions — used for the initial configuration, whose
    /// outputs (if any) happen without an edge to hang a violation on.
    /// Returns `None` for systems built with
    /// [`new_unchecked`](Self::new_unchecked).
    pub fn check_initial_outputs(&self, config: &Configuration) -> Option<Violation> {
        if !self.consensus_checked {
            return None;
        }
        let mut seen: Option<u32> = None;
        for (i, d) in config.decided.iter().enumerate() {
            let Some(v) = *d else { continue };
            let p = ProcessId(i as u16);
            if !self.inputs.contains(&v) {
                return Some(Violation::Validity {
                    process: p,
                    output: v,
                });
            }
            match seen {
                Some(earlier) if earlier != v => {
                    return Some(Violation::Agreement {
                        process: p,
                        output: v,
                        earlier,
                    })
                }
                _ => seen = Some(v),
            }
        }
        None
    }

    /// The pending action of `pid` in `config`.
    pub fn action_of(&self, config: &Configuration, pid: ProcessId) -> Action {
        self.program.action(pid, &config.states[pid.index()])
    }

    /// Returns the value `pid` has output in `config`, if any.
    pub fn decided_value(&self, config: &Configuration, pid: ProcessId) -> Option<u32> {
        config.decided[pid.index()]
    }

    /// Applies one event in place and reports its effect.
    ///
    /// # Panics
    ///
    /// Panics if the event's process id is out of range.
    pub fn apply(&self, config: &mut Configuration, event: Event) -> StepEffect {
        let mut effect = StepEffect {
            event,
            access: None,
            outputs: Vec::new(),
            violation: None,
        };
        match event {
            Event::Crash(p) => {
                self.reset_process(config, &mut effect, p);
            }
            Event::SystemCrash => {
                // Golab's simultaneous crash: every process resets at once
                // (shared objects persist). Re-outputs of programs whose
                // initial state is an output state are recorded and checked
                // in process-id order.
                for i in 0..self.n() {
                    self.reset_process(config, &mut effect, ProcessId(i as u16));
                }
            }
            Event::CrashDuring(p) => {
                // Mid-operation crash, linearized resolution: the pending
                // invocation takes effect on the object, but the response
                // is lost together with the crashed process's volatile
                // state. Without a pending invocation this degenerates to
                // an ordinary crash.
                if let Action::Invoke { object, op } = self.action_of(config, p) {
                    self.layout.apply(&mut config.values, object, op);
                    effect.access = Some((object, op));
                }
                self.reset_process(config, &mut effect, p);
            }
            Event::Step(p) => {
                let state = &config.states[p.index()];
                match self.program.action(p, state) {
                    Action::Output(_) => {
                        // A step in an output state is a no-op (paper, §2).
                    }
                    Action::Invoke { object, op } => {
                        let out = self.layout.apply(&mut config.values, object, op);
                        effect.access = Some((object, op));
                        let new_state = self.program.transition(p, state, out.response);
                        // Did this step enter an output state?
                        if let Action::Output(v) = self.program.action(p, &new_state) {
                            effect.outputs.push((p, v));
                            effect.violation = self.check_output(config, p, v);
                            if config.decided[p.index()].is_none() {
                                config.decided[p.index()] = Some(v);
                            }
                        }
                        config.states[p.index()] = new_state;
                    }
                }
            }
        }
        effect
    }

    /// Crash-resets one process: local state resets to the initial state
    /// (shared objects persist; the process keeps its input). A program
    /// whose initial state is an output state re-outputs on recovery; that
    /// output is recorded and checked like any other, keeping the *first*
    /// violation when several processes reset within one event.
    fn reset_process(&self, config: &mut Configuration, effect: &mut StepEffect, p: ProcessId) {
        let input = self.inputs[p.index()];
        let state = self.program.initial_state(p, input);
        if let Action::Output(v) = self.program.action(p, &state) {
            effect.outputs.push((p, v));
            if effect.violation.is_none() {
                effect.violation = self.check_output(config, p, v);
            }
            if config.decided[p.index()].is_none() {
                config.decided[p.index()] = Some(v);
            }
        }
        config.states[p.index()] = state;
    }

    fn check_output(&self, config: &Configuration, p: ProcessId, v: u32) -> Option<Violation> {
        if !self.consensus_checked {
            return None;
        }
        if !self.inputs.contains(&v) {
            return Some(Violation::Validity {
                process: p,
                output: v,
            });
        }
        config
            .decided
            .iter()
            .flatten()
            .find(|&&earlier| earlier != v)
            .map(|&earlier| Violation::Agreement {
                process: p,
                output: v,
                earlier,
            })
    }

    /// Runs a whole schedule in place, returning the per-event effects.
    pub fn run(&self, config: &mut Configuration, schedule: &Schedule) -> Vec<StepEffect> {
        schedule.iter().map(|e| self.apply(config, e)).collect()
    }

    /// Runs a schedule from the initial configuration, returning the final
    /// configuration and the first violation, if any.
    pub fn run_from_start(&self, schedule: &Schedule) -> (Configuration, Option<Violation>) {
        let mut config = self.initial_config();
        let effects = self.run(&mut config, schedule);
        let violation = effects.iter().find_map(|e| e.violation);
        (config, violation)
    }

    /// Runs `pid` solo from `config` until it outputs, or for at most
    /// `max_steps` steps. Returns the output if it decided.
    ///
    /// This is the paper's *solo-terminating execution*; for a recoverable
    /// wait-free algorithm a crash-free solo run must always decide, so a
    /// `None` return from a generous `max_steps` indicates a wait-freedom
    /// bug.
    pub fn run_solo(
        &self,
        config: &mut Configuration,
        pid: ProcessId,
        max_steps: usize,
    ) -> Option<u32> {
        for _ in 0..=max_steps {
            if let Action::Output(v) = self.action_of(config, pid) {
                if config.decided[pid.index()].is_none() {
                    config.decided[pid.index()] = Some(v);
                }
                return Some(v);
            }
            self.apply(config, Event::Step(pid));
        }
        config.decided[pid.index()]
    }
}

impl fmt::Debug for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("System")
            .field("program", &self.program.name())
            .field("inputs", &self.inputs)
            .field("objects", &self.layout.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::OutputInput;

    fn trivial(inputs: Vec<u32>) -> System {
        System::new(Arc::new(OutputInput), Arc::new(HeapLayout::new()), inputs)
    }

    #[test]
    fn initial_output_states_decide_at_time_zero() {
        // OutputInput starts in an output state: its decision is recorded
        // immediately, and mixed inputs are a time-zero agreement breach
        // (caught by check_initial_outputs).
        let sys = trivial(vec![0, 1]);
        let config = sys.initial_config();
        assert!(config.all_decided());
        assert_eq!(config.outputs(), vec![0, 1]);
        assert_eq!(config.num_processes(), 2);
        assert!(sys.check_initial_outputs(&config).is_some());
        // Uniform inputs are fine.
        let sys = trivial(vec![1, 1]);
        let config = sys.initial_config();
        assert!(sys.check_initial_outputs(&config).is_none());
    }

    #[test]
    fn output_states_step_as_no_ops() {
        let sys = trivial(vec![1]);
        let mut config = sys.initial_config();
        // OutputInput starts in an output state; decided is only recorded on
        // entering the state via a transition, which never happens here —
        // but action_of still reports the output state.
        let before = config.clone();
        sys.apply(&mut config, Event::Step(ProcessId(0)));
        assert_eq!(config.states, before.states);
        assert_eq!(sys.action_of(&config, ProcessId(0)), Action::Output(1));
    }

    #[test]
    fn agreement_violation_is_detected() {
        // Two processes that output their own (different) inputs.
        let sys = trivial(vec![0, 1]);
        let mut config = sys.initial_config();
        // Force decisions through run_solo bookkeeping.
        let a = sys.run_solo(&mut config, ProcessId(0), 10);
        let b = sys.run_solo(&mut config, ProcessId(1), 10);
        assert_eq!(a, Some(0));
        assert_eq!(b, Some(1));
        // OutputInput never *enters* an output state via transition, so the
        // executor-level violation is exercised by programs with real steps;
        // here we check the configuration-level view instead.
        assert_eq!(config.outputs().len(), 2);
    }

    #[test]
    fn crash_resets_state_but_keeps_input() {
        let sys = trivial(vec![7, 9]);
        let mut config = sys.initial_config();
        config.states[1] = LocalState::word1(42); // pretend it progressed
        sys.apply(&mut config, Event::Crash(ProcessId(1)));
        assert_eq!(config.states[1], LocalState::word1(9));
    }

    #[test]
    fn system_crash_resets_every_process() {
        let sys = trivial(vec![7, 9]);
        let mut config = sys.initial_config();
        config.states[0] = LocalState::word1(41);
        config.states[1] = LocalState::word1(42);
        let effect = sys.apply(&mut config, Event::SystemCrash);
        assert_eq!(config.states[0], LocalState::word1(7));
        assert_eq!(config.states[1], LocalState::word1(9));
        // OutputInput's initial state is an output state: both processes
        // re-output on recovery, in process-id order, and the conflicting
        // pair is an agreement violation.
        assert_eq!(effect.outputs, vec![(ProcessId(0), 7), (ProcessId(1), 9)]);
        assert!(effect.violation.is_some());
    }

    /// Writes its input to the register, then outputs the input.
    struct WriteFirst {
        reg: ObjectId,
    }

    impl Program for WriteFirst {
        fn name(&self) -> String {
            "write-first".into()
        }
        fn initial_state(&self, _pid: ProcessId, input: u32) -> LocalState {
            LocalState::word2(input, 0)
        }
        fn action(&self, _pid: ProcessId, state: &LocalState) -> Action {
            if state.word(1) == 0 {
                Action::Invoke {
                    object: self.reg,
                    op: OpId::new(state.word(0) as u16),
                }
            } else {
                Action::Output(state.word(0))
            }
        }
        fn transition(
            &self,
            _pid: ProcessId,
            state: &LocalState,
            _response: rcn_spec::Response,
        ) -> LocalState {
            LocalState::word2(state.word(0), 1)
        }
    }

    fn write_sys(inputs: Vec<u32>) -> (System, ObjectId) {
        let mut layout = HeapLayout::new();
        let reg = layout.add_object(
            "R",
            Arc::new(rcn_spec::zoo::Register::new(2)),
            ValueId::new(0),
        );
        (
            System::new(Arc::new(WriteFirst { reg }), Arc::new(layout), inputs),
            reg,
        )
    }

    #[test]
    fn crash_during_linearizes_the_pending_operation() {
        let (sys, reg) = write_sys(vec![1, 1]);
        let before = sys.initial_config();

        // Ordinary crash: the pending write is lost with the process.
        let mut lost = before.clone();
        let effect = sys.apply(&mut lost, Event::Crash(ProcessId(0)));
        assert_eq!(effect.access, None);
        assert_eq!(lost.values, before.values);

        // Mid-operation crash: the write takes effect, the process still
        // resets (its response — and thus its progress — is lost).
        let mut linearized = before.clone();
        let effect = sys.apply(&mut linearized, Event::CrashDuring(ProcessId(0)));
        assert!(effect.access.is_some());
        assert_ne!(linearized.values, before.values);
        assert_eq!(linearized.states[0], before.states[0], "state reset");

        // A later step by p0 re-invokes: the operation's effect persisted
        // but p0 remembers nothing of it.
        let effect = sys.apply(&mut linearized, Event::Step(ProcessId(0)));
        assert_eq!(effect.access.map(|(o, _)| o), Some(reg));
    }

    #[test]
    fn crash_during_without_pending_op_degenerates_to_crash() {
        let (sys, _) = write_sys(vec![1, 1]);
        let mut config = sys.initial_config();
        // Step p0 into its output state: no operation in flight any more.
        sys.apply(&mut config, Event::Step(ProcessId(0)));
        let via_during = {
            let mut c = config.clone();
            sys.apply(&mut c, Event::CrashDuring(ProcessId(0)));
            c
        };
        let via_crash = {
            let mut c = config.clone();
            sys.apply(&mut c, Event::Crash(ProcessId(0)));
            c
        };
        assert_eq!(via_during, via_crash);
    }

    #[test]
    fn indistinguishability_checks_only_listed_processes() {
        let sys = trivial(vec![0, 1]);
        let a = sys.initial_config();
        let mut b = a.clone();
        b.states[1] = LocalState::word1(99);
        assert!(a.indistinguishable_to(&b, &[ProcessId(0)]));
        assert!(!a.indistinguishable_to(&b, &[ProcessId(0), ProcessId(1)]));
        assert!(a.objects_equal(&b));
    }
}
