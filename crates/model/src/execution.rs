//! Executions as first-class values.
//!
//! Paper, §2: *"An execution consists of an alternating sequence of
//! configurations and events."* [`Execution`] records exactly that — the
//! initial configuration, then each event with the configuration it leads
//! to — and implements the paper's indistinguishability relation between
//! executions: two executions are indistinguishable to a set of processes
//! `Q` if their starting configurations agree on `Q` and on all object
//! values, they contain only events by `Q`, and their schedules coincide.

use crate::schedule::{Event, ProcessId, Schedule};
use crate::system::{Configuration, StepEffect, System, Violation};
use std::fmt;

/// A recorded execution: `C_0, e_1, C_1, e_2, …, C_k`.
#[derive(Debug, Clone)]
pub struct Execution {
    initial: Configuration,
    steps: Vec<(Event, StepEffect, Configuration)>,
}

impl Execution {
    /// Records the execution of `schedule` from the system's initial
    /// configuration.
    pub fn record(system: &System, schedule: &Schedule) -> Execution {
        Self::record_from(system, system.initial_config(), schedule)
    }

    /// Records the execution of `schedule` from an explicit starting
    /// configuration.
    pub fn record_from(system: &System, initial: Configuration, schedule: &Schedule) -> Execution {
        let mut config = initial.clone();
        let mut steps = Vec::with_capacity(schedule.len());
        for event in schedule.iter() {
            let effect = system.apply(&mut config, event);
            steps.push((event, effect, config.clone()));
        }
        Execution { initial, steps }
    }

    /// The starting configuration.
    pub fn initial(&self) -> &Configuration {
        &self.initial
    }

    /// The final configuration (the starting one if the execution is
    /// empty).
    pub fn final_config(&self) -> &Configuration {
        self.steps.last().map_or(&self.initial, |(_, _, c)| c)
    }

    /// The schedule of the execution (paper, §2: the sequence of processes
    /// that take steps and crashes that occur).
    pub fn schedule(&self) -> Schedule {
        self.steps.iter().map(|(e, _, _)| *e).collect()
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Returns `true` if the execution contains no events.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Iterates over `(event, effect, configuration-after)` triples.
    pub fn iter(&self) -> impl Iterator<Item = &(Event, StepEffect, Configuration)> {
        self.steps.iter()
    }

    /// The first safety violation in the execution, if any.
    pub fn first_violation(&self) -> Option<Violation> {
        self.steps.iter().find_map(|(_, eff, _)| eff.violation)
    }

    /// All outputs made during the execution, in order.
    pub fn outputs(&self) -> Vec<(ProcessId, u32)> {
        self.steps
            .iter()
            .flat_map(|(_, eff, _)| eff.outputs.iter().copied())
            .collect()
    }

    /// Returns `true` if every event belongs to a process in `procs` (a
    /// system-wide crash belongs to every process at once, so it is "by
    /// `procs`" only if `procs` covers all of them).
    pub fn only_by(&self, procs: &[ProcessId]) -> bool {
        let n = self.initial.num_processes();
        self.steps.iter().all(|(e, _, _)| match e.process() {
            Some(p) => procs.contains(&p),
            None => (0..n).all(|i| procs.contains(&ProcessId(i as u16))),
        })
    }

    /// The paper's indistinguishability relation on executions, for the
    /// process set `procs`: equal starting states on `procs`, equal object
    /// values at the start, only events by `procs`, and identical
    /// schedules.
    ///
    /// By the standard argument (paper §2, citing Attiya–Ellen), two
    /// indistinguishable executions also agree on every later state of
    /// `procs` and on the values of the objects they access — which this
    /// method double-checks on the recorded data.
    pub fn indistinguishable_to(&self, other: &Execution, procs: &[ProcessId]) -> bool {
        if !self.initial.indistinguishable_to(&other.initial, procs)
            || !self.initial.objects_equal(&other.initial)
            || !self.only_by(procs)
            || !other.only_by(procs)
            || self.schedule() != other.schedule()
        {
            return false;
        }
        // Consequence check: per-step agreement on the processes' states.
        self.steps
            .iter()
            .zip(&other.steps)
            .all(|((_, _, c1), (_, _, c2))| c1.indistinguishable_to(c2, procs))
    }
}

impl fmt::Display for Execution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "  {}", self.initial)?;
        for (event, effect, config) in &self.steps {
            write!(f, "{event}")?;
            for (p, v) in &effect.outputs {
                write!(f, " [{p} outputs {v}]")?;
            }
            if let Some(violation) = effect.violation {
                write!(f, " [!! {violation}]")?;
            }
            writeln!(f, "\n  {config}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::HeapLayout;
    use crate::program::{Action, LocalState, Program};
    use rcn_spec::zoo::Register;
    use std::sync::Arc;

    /// Writes its input, then outputs it.
    struct WriteOnce {
        reg: crate::heap::ObjectId,
    }

    impl Program for WriteOnce {
        fn name(&self) -> String {
            "write-once".into()
        }
        fn initial_state(&self, _pid: ProcessId, input: u32) -> LocalState {
            LocalState::word2(input, 0)
        }
        fn action(&self, _pid: ProcessId, state: &LocalState) -> Action {
            if state.word(1) == 0 {
                Action::Invoke {
                    object: self.reg,
                    op: rcn_spec::OpId::new(state.word(0) as u16),
                }
            } else {
                Action::Output(state.word(0))
            }
        }
        fn transition(
            &self,
            _pid: ProcessId,
            state: &LocalState,
            _response: rcn_spec::Response,
        ) -> LocalState {
            LocalState::word2(state.word(0), 1)
        }
    }

    fn sys(inputs: Vec<u32>) -> System {
        let mut layout = HeapLayout::new();
        let reg = layout.add_object("R", Arc::new(Register::new(2)), rcn_spec::ValueId::new(0));
        System::new(Arc::new(WriteOnce { reg }), Arc::new(layout), inputs)
    }

    #[test]
    fn record_matches_run() {
        let system = sys(vec![0, 1]);
        let sched: Schedule = "p0 p1 p0 c1 p1".parse().unwrap();
        let exec = Execution::record(&system, &sched);
        let (config, _) = system.run_from_start(&sched);
        assert_eq!(exec.final_config(), &config);
        assert_eq!(exec.schedule(), sched);
        assert_eq!(exec.len(), 5);
    }

    #[test]
    fn outputs_are_collected_in_order() {
        let system = sys(vec![1, 0]);
        let sched: Schedule = "p0 p0 p1 p1".parse().unwrap();
        let exec = Execution::record(&system, &sched);
        assert_eq!(
            exec.outputs(),
            vec![(ProcessId::new(0), 1), (ProcessId::new(1), 0)]
        );
        assert!(exec.first_violation().is_some(), "0 vs 1 disagreement");
    }

    #[test]
    fn solo_executions_by_same_state_processes_are_indistinguishable() {
        // Two systems whose p1 has the same input: p1-solo executions from
        // their initial configurations are indistinguishable to {p1}.
        let sys_a = sys(vec![0, 1]);
        let sys_b = sys(vec![1, 1]); // p0 differs, p1 agrees
        let sched: Schedule = "p1 p1".parse().unwrap();
        let ea = Execution::record(&sys_a, &sched);
        let eb = Execution::record(&sys_b, &sched);
        assert!(ea.indistinguishable_to(&eb, &[ProcessId::new(1)]));
        // … but not to {p0} (different inputs) nor with events outside Q.
        assert!(!ea.indistinguishable_to(&eb, &[ProcessId::new(0)]));
        let with_p0: Schedule = "p1 p0".parse().unwrap();
        let ec = Execution::record(&sys_a, &with_p0);
        assert!(!ec.indistinguishable_to(&ea, &[ProcessId::new(1)]));
    }

    #[test]
    fn empty_execution_is_its_initial_configuration() {
        let system = sys(vec![0]);
        let exec = Execution::record(&system, &Schedule::new());
        assert!(exec.is_empty());
        assert_eq!(exec.final_config(), exec.initial());
    }

    #[test]
    fn display_shows_events_and_outputs() {
        let system = sys(vec![1, 1]);
        let sched: Schedule = "p0 p0".parse().unwrap();
        let exec = Execution::record(&system, &sched);
        let text = exec.to_string();
        assert!(text.contains("p0 [p0 outputs 1]"));
    }
}
