//! Independent valency re-derivation over the `E_z*` execution sets.
//!
//! The decider stack computes bivalence/univalence facts through
//! `rcn-valency`'s `BudgetedGraph` (a forward exploration indexed by a
//! `std` hash map, valencies by iterate-until-fixed sweeps). This module
//! answers the *same question* — which decision values are reachable from
//! the initial configuration when `p_i` may crash at most `z·n ×` (steps of
//! lower-id processes) times, allowances clamped at a ceiling — with a
//! different implementation: breadth-first search keyed by the canonical
//! FNV index of [`crate::hash`], explicit edge lists, and a backward
//! worklist propagation from deciding states. Agreement between the two is
//! the RCN201 cross-check.
//!
//! The `E_z*` semantics replicated here (and in the reference — any
//! divergence is a bug in one of them):
//!
//! * the initial state has zero allowance everywhere, and `p_0` never
//!   crashes;
//! * a step of `p_i` funds `z·n` further crashes of every higher-id
//!   process, clamped at the ceiling;
//! * a crash of `p_i` spends one unit of `p_i`'s allowance;
//! * a state seeds 0-reachability for every process decided on 0 and
//!   1-reachability for every process decided on a nonzero value, and
//!   reachability flows backward over every explored edge.
//!
//! Under a [`Coverage::Bounded`] result only **bivalence** is trustworthy
//! (both witnesses are real executions); a univalent or undetermined
//! verdict on a clipped graph may just be missing the other witness, which
//! is why the cross-check refuses to compare bounded valencies.

use crate::checker::Coverage;
use crate::hash::StateIndex;
use rcn_model::{Event, ProcessId, System};
use std::fmt;

/// Budgets for one valency check, mirroring `BudgetedGraph::explore`'s
/// `(z, clamp, max_states)` parameters so verdicts are directly comparable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValencyConfig {
    /// The paper's budget multiplier `z` (a step of `p_i` funds `z·n`
    /// crashes of each higher-id process).
    pub z: usize,
    /// The allowance ceiling keeping the budgeted state space finite.
    pub clamp: u16,
    /// Maximum number of budgeted states stored; hitting it demotes the
    /// result to [`Coverage::Bounded`] instead of erroring.
    pub max_states: usize,
}

impl Default for ValencyConfig {
    fn default() -> Self {
        ValencyConfig {
            z: 1,
            clamp: 4,
            max_states: 200_000,
        }
    }
}

/// The checker's independent valency verdict. Display matches the decider
/// stack's `Valency` rendering so the two sides diff textually.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum McValency {
    /// Both a 0-decision and a 1-decision are reachable.
    Bivalent,
    /// Only `v`-decisions are reachable.
    Univalent(u32),
    /// No decision was reached in the explored graph.
    Undetermined,
}

impl fmt::Display for McValency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McValency::Bivalent => write!(f, "bivalent"),
            McValency::Univalent(v) => write!(f, "{v}-univalent"),
            McValency::Undetermined => write!(f, "undetermined"),
        }
    }
}

/// The outcome of one independent valency check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValencyReport {
    /// The initial configuration's valency over the explored graph.
    pub valency: McValency,
    /// Budgeted states stored.
    pub states: u64,
    /// Whether the whole clamped `E_z*` graph was covered. Under
    /// [`Coverage::Bounded`] only a `Bivalent` verdict is sound.
    pub coverage: Coverage,
}

/// One stored budgeted state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct BudgetKey {
    config: rcn_model::Configuration,
    allowance: Vec<u16>,
}

/// Breadth-first valency check of `system`'s initial configuration under
/// the clamped `E_z*` crash budgets.
pub fn valency_check(system: &System, config: ValencyConfig) -> ValencyReport {
    let n = system.n();
    let funded = (config.z * n) as u16;
    let init = BudgetKey {
        config: system.initial_config(),
        allowance: vec![0; n],
    };
    let mut keys = vec![init];
    let mut index = StateIndex::new();
    index.insert(&keys[0], 0);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut clipped = false;

    let mut head = 0usize;
    while head < keys.len() {
        let id = head;
        head += 1;
        for i in 0..n {
            let p = ProcessId(i as u16);
            let mut candidates = vec![Event::Step(p)];
            if i > 0 && keys[id].allowance[i] > 0 {
                candidates.push(Event::Crash(p));
            }
            for event in candidates {
                let mut next = keys[id].clone();
                system.apply(&mut next.config, event);
                match event {
                    Event::Step(_) => {
                        for a in next.allowance.iter_mut().skip(i + 1) {
                            *a = (*a).saturating_add(funded).min(config.clamp);
                        }
                    }
                    Event::Crash(_) => next.allowance[i] -= 1,
                    // `E_z*` budgets (paper §3) are defined for individual
                    // crashes only; this BFS never enumerates the extended
                    // fault families.
                    Event::SystemCrash | Event::CrashDuring(_) => {
                        unreachable!("valency graphs enumerate only steps and per-process crashes")
                    }
                }
                let target = match index.find(&keys, &next) {
                    Some(t) => t,
                    None => {
                        if keys.len() >= config.max_states {
                            clipped = true;
                            continue;
                        }
                        let t = keys.len();
                        index.insert(&next, t);
                        keys.push(next);
                        t
                    }
                };
                edges.push((id as u32, target as u32));
            }
        }
    }

    let valency = initial_valency(&keys, &edges);
    ValencyReport {
        valency,
        states: keys.len() as u64,
        coverage: if clipped {
            Coverage::Bounded
        } else {
            Coverage::Exhaustive
        },
    }
}

/// Backward worklist propagation of "can reach a `v`-decision" from each
/// state's own decided values over the reversed edge list, evaluated at the
/// initial state.
fn initial_valency(keys: &[BudgetKey], edges: &[(u32, u32)]) -> McValency {
    // Reverse adjacency as a CSR-style bucket list.
    let mut preds: Vec<Vec<u32>> = vec![Vec::new(); keys.len()];
    for &(from, to) in edges {
        preds[to as usize].push(from);
    }
    let reach = |want_zero: bool| -> bool {
        let mut seen = vec![false; keys.len()];
        let mut work: Vec<u32> = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            let seeds = key
                .config
                .decided
                .iter()
                .flatten()
                .any(|&d| (d == 0) == want_zero);
            if seeds {
                seen[i] = true;
                work.push(i as u32);
            }
        }
        while let Some(i) = work.pop() {
            if i == 0 {
                return true;
            }
            for &p in &preds[i as usize] {
                if !seen[p as usize] {
                    seen[p as usize] = true;
                    work.push(p);
                }
            }
        }
        seen[0]
    };
    match (reach(true), reach(false)) {
        (true, true) => McValency::Bivalent,
        (true, false) => McValency::Univalent(0),
        (false, true) => {
            // The reference reports the reachable value; over binary
            // consensus every nonzero decision is 1.
            McValency::Univalent(1)
        }
        (false, false) => McValency::Undetermined,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcn_protocols::{TasConsensus, TnnRecoverable, TournamentConsensus};
    use rcn_spec::zoo::StickyBit;
    use std::sync::Arc;

    #[test]
    fn mixed_inputs_are_bivalent() {
        // Observation 1 of the paper: the initial configuration with mixed
        // inputs is bivalent.
        let sys = TnnRecoverable::system(5, 2, vec![0, 1]);
        let report = valency_check(&sys, ValencyConfig::default());
        assert_eq!(report.coverage, Coverage::Exhaustive);
        assert_eq!(report.valency, McValency::Bivalent);
    }

    #[test]
    fn uniform_inputs_are_univalent_by_validity() {
        for (inputs, want) in [
            (vec![1, 1], McValency::Univalent(1)),
            (vec![0, 0], McValency::Univalent(0)),
        ] {
            let sys = TnnRecoverable::system(5, 2, inputs);
            let report = valency_check(&sys, ValencyConfig::default());
            assert_eq!(report.valency, want);
        }
    }

    #[test]
    fn tournament_mixed_inputs_are_bivalent() {
        let sys = TournamentConsensus::try_new(Arc::new(StickyBit::new()), vec![1, 0]).unwrap();
        let report = valency_check(
            &sys,
            ValencyConfig {
                clamp: 2,
                ..ValencyConfig::default()
            },
        );
        assert_eq!(report.coverage, Coverage::Exhaustive);
        assert_eq!(report.valency, McValency::Bivalent);
    }

    #[test]
    fn broken_protocols_still_have_well_defined_valencies() {
        // T&S consensus violates agreement under crashes, but its decision
        // *reachability* is still meaningful — mixed inputs reach both.
        let sys = TasConsensus::system(vec![0, 1]);
        let report = valency_check(&sys, ValencyConfig::default());
        assert_eq!(report.valency, McValency::Bivalent);
    }

    #[test]
    fn state_cap_demotes_coverage() {
        let sys = TnnRecoverable::system(5, 2, vec![0, 1]);
        let report = valency_check(
            &sys,
            ValencyConfig {
                max_states: 5,
                ..ValencyConfig::default()
            },
        );
        assert_eq!(report.coverage, Coverage::Bounded);
        assert_eq!(report.states, 5);
    }

    #[test]
    fn check_is_deterministic() {
        let sys = TasConsensus::system(vec![0, 1]);
        let first = valency_check(&sys, ValencyConfig::default());
        for _ in 0..3 {
            assert_eq!(valency_check(&sys, ValencyConfig::default()), first);
        }
    }
}
