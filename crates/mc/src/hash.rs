//! Canonical FNV-1a state hashing for the breadth-first checker.
//!
//! The checker keys its visited set on the *canonical encoding* of a state
//! (the `Hash` traversal of its fields, which is deterministic and
//! injective up to structural equality) folded through FNV-1a. Hashing is
//! only a bucket index: lookups always confirm full structural equality,
//! so a 64-bit collision can never merge two distinct states — it only
//! costs one extra comparison. This keeps the checker sound while staying
//! deliberately independent of the DFS explorer's `std::collections`
//! default hasher.

use std::hash::{Hash, Hasher};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A 64-bit FNV-1a [`Hasher`].
pub struct Fnv1a {
    state: u64,
}

impl Fnv1a {
    /// A hasher at the FNV offset basis.
    pub fn new() -> Fnv1a {
        Fnv1a { state: FNV_OFFSET }
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

impl Hasher for Fnv1a {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    fn finish(&self) -> u64 {
        self.state
    }
}

/// The canonical FNV-1a digest of any hashable state.
pub fn canonical_hash<T: Hash>(value: &T) -> u64 {
    let mut h = Fnv1a::new();
    value.hash(&mut h);
    h.finish()
}

/// A chained hash index over an external state store: maps canonical
/// digests to the indices of the states bearing them, confirming equality
/// through the caller's slice on every probe.
#[derive(Default)]
pub struct StateIndex {
    buckets: std::collections::HashMap<u64, Vec<u32>>,
}

impl StateIndex {
    /// An empty index.
    pub fn new() -> StateIndex {
        StateIndex::default()
    }

    /// Looks up `key` among `states`, returning its index if present.
    pub fn find<T: Hash + Eq>(&self, states: &[T], key: &T) -> Option<usize> {
        let digest = canonical_hash(key);
        self.buckets
            .get(&digest)?
            .iter()
            .map(|&i| i as usize)
            .find(|&i| &states[i] == key)
    }

    /// Records that `key` lives at `index` in the caller's store.
    pub fn insert<T: Hash>(&mut self, key: &T, index: usize) {
        let digest = canonical_hash(key);
        self.buckets.entry(digest).or_default().push(index as u32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Classic FNV-1a test vectors.
        let mut h = Fnv1a::new();
        h.write(b"");
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv1a::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv1a::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn index_distinguishes_colliding_buckets() {
        // Equality is structural even if digests were to collide: the index
        // never returns a structurally different state.
        let states = vec![(1u32, 2u32), (3, 4), (1, 3)];
        let mut index = StateIndex::new();
        for (i, s) in states.iter().enumerate() {
            index.insert(s, i);
        }
        assert_eq!(index.find(&states, &(1, 2)), Some(0));
        assert_eq!(index.find(&states, &(1, 3)), Some(2));
        assert_eq!(index.find(&states, &(9, 9)), None);
    }
}
