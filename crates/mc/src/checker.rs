//! The breadth-first crash-placement checker.
//!
//! This is a deliberate re-implementation of the crashtest question — *does
//! any schedule within a per-process crash budget and a length cap violate
//! agreement or validity?* — answered by a different algorithm than
//! `rcn-faults`' memoized DFS: a plain breadth-first search over
//! canonically-hashed `(configuration, crash-counts)` states with parent
//! pointers. The two engines share no code (this crate depends only on
//! `rcn-model` and `rcn-obs`), so a verdict they agree on does not rest on
//! any single search's pruning being sound — exactly the bug class the
//! depth-aware-memoization regression in the DFS explorer belongs to.
//!
//! Properties the BFS buys structurally:
//!
//! * **Minimal-depth counterexamples.** States are expanded in distance
//!   order, so the first violating event found closes a schedule no longer
//!   than any other violating schedule in budget — no shrinking needed for
//!   length (the DFS needs delta-debugging to get there).
//! * **No pruning to audit.** Every enabled event is applied; no-op steps
//!   and wasted crashes simply deduplicate into already-visited states.
//!   The DFS's skip rules (no-op steps, crashes in the initial state) are
//!   optimizations this checker intentionally does not copy.

use crate::hash::StateIndex;
use rcn_model::{Configuration, Event, FaultModel, ProcessId, Schedule, System, Violation};
use rcn_obs::Tracer;
use std::fmt;

/// Budgets for one breadth-first check. The semantics match the DFS
/// explorer's budgets exactly — same `K` crashes per process, same
/// schedule-length cap `D` — so verdicts are directly comparable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McConfig {
    /// Maximum crashes per process along any schedule (the budget `K`).
    pub max_crashes: usize,
    /// Maximum schedule length (the depth cap `D`).
    pub max_depth: usize,
    /// Maximum number of distinct states stored before the search stops
    /// growing; hitting it demotes the result to [`Coverage::Bounded`].
    pub max_states: usize,
    /// Which crash-event families the adversary may schedule. Part of the
    /// verdict's identity (same accounting as the DFS: a system-wide crash
    /// charges every process one crash, a mid-operation crash charges the
    /// crashing process).
    pub fault_model: FaultModel,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            max_crashes: 2,
            max_depth: 16,
            max_states: 500_000,
            fault_model: FaultModel::PER_PROCESS,
        }
    }
}

/// How much of the stated budget a verdict actually covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Coverage {
    /// Every schedule within the crash/depth budget was covered: a clean
    /// verdict is a certification.
    Exhaustive,
    /// The state cap stopped the search; a clean verdict only covers the
    /// states actually stored.
    Bounded,
}

impl Coverage {
    /// `true` for [`Coverage::Exhaustive`].
    pub fn is_exhaustive(self) -> bool {
        matches!(self, Coverage::Exhaustive)
    }
}

impl fmt::Display for Coverage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Coverage::Exhaustive => write!(f, "exhaustive"),
            Coverage::Bounded => write!(f, "bounded"),
        }
    }
}

/// Counters of one breadth-first check.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct McStats {
    /// Distinct `(configuration, crash-counts)` states stored.
    pub states_visited: u64,
    /// Events applied (counting ones that deduplicated).
    pub events_applied: u64,
    /// Events whose successor was already stored (the dedup ratio's
    /// numerator: `dedup_hits / events_applied`).
    pub dedup_hits: u64,
    /// Largest number of discovered-but-unexpanded states at any point
    /// (the BFS's memory high-water mark, modulo the stored prefix).
    pub frontier_peak: u64,
    /// `true` if some state sat at the depth cap with events still
    /// enabled. Expected for any non-trivial protocol; the cap is part of
    /// the stated budget and does not void exhaustiveness within it.
    pub depth_clipped: bool,
    /// `true` if the state cap was hit (the search stopped growing).
    pub state_clipped: bool,
}

impl McStats {
    /// The fraction of applied events that landed on an already-stored
    /// state (0 when no events were applied).
    pub fn dedup_ratio(&self) -> f64 {
        if self.events_applied == 0 {
            0.0
        } else {
            self.dedup_hits as f64 / self.events_applied as f64
        }
    }
}

impl fmt::Display for McStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} states, {} events, frontier peak {}, dedup {:.0}%",
            self.states_visited,
            self.events_applied,
            self.frontier_peak,
            self.dedup_ratio() * 100.0
        )?;
        if self.state_clipped {
            write!(f, " (state cap hit)")?;
        }
        Ok(())
    }
}

/// A violating schedule found by the breadth-first search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct McCounterexample {
    /// The violating schedule. Breadth-first order guarantees it is
    /// *minimal-depth*: no in-budget schedule shorter than this violates.
    pub schedule: Schedule,
    /// The violation its final event triggers (or, for an empty schedule,
    /// the time-zero violation of the initial configuration).
    pub violation: Violation,
}

impl fmt::Display for McCounterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}  ⇒  {}", self.schedule, self.violation)
    }
}

/// The outcome of one breadth-first check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct McReport {
    /// Search counters.
    pub stats: McStats,
    /// Whether the stated budget was fully covered.
    pub coverage: Coverage,
    /// The minimal-depth counterexample, or `None` if every covered
    /// schedule is safe.
    pub counterexample: Option<McCounterexample>,
}

impl McReport {
    /// `true` if no violation was found *and* the whole budget was
    /// covered — the same bar the DFS explorer's certification sets.
    pub fn is_certified_clean(&self) -> bool {
        self.counterexample.is_none() && self.coverage.is_exhaustive()
    }
}

/// One stored state plus the back-pointer that reconstructs its schedule.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct StateKey {
    config: Configuration,
    crashes: Vec<u16>,
}

struct Node {
    key: StateKey,
    parent: Option<(u32, Event)>,
    depth: u16,
}

/// The breadth-first checker.
pub struct ModelChecker<'s> {
    system: &'s System,
    config: McConfig,
    tracer: Tracer,
}

impl<'s> ModelChecker<'s> {
    /// A checker for `system` with the given budgets.
    pub fn new(system: &'s System, config: McConfig) -> Self {
        ModelChecker {
            system,
            config,
            tracer: Tracer::disabled(),
        }
    }

    /// Attaches a tracer: the search is bracketed in an `mc.check` span,
    /// the loop maintains `mc.events_applied` / `mc.dedup_hits` counters
    /// and an `mc.depth` histogram (one observation per stored state), and
    /// the final [`McStats`] are published as absolute `mc.*` counters.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Runs the breadth-first search.
    pub fn check(&self) -> McReport {
        let span = self.tracer.span_with(
            "mc.check",
            i64::try_from(self.config.max_depth).unwrap_or(i64::MAX),
            &format!(
                "crashes={} states={} model={}",
                self.config.max_crashes, self.config.max_states, self.config.fault_model
            ),
        );
        let events_counter = self.tracer.counter("mc.events_applied");
        let dedup_counter = self.tracer.counter("mc.dedup_hits");
        let depths = self.tracer.histogram("mc.depth");

        let mut stats = McStats::default();
        let initial = self.system.initial_config();
        if let Some(violation) = self.system.check_initial_outputs(&initial) {
            let report = McReport {
                stats,
                coverage: Coverage::Exhaustive,
                counterexample: Some(McCounterexample {
                    schedule: Schedule::new(),
                    violation,
                }),
            };
            self.publish(&report, &span);
            return report;
        }

        let n = self.system.n();
        let mut nodes = vec![Node {
            key: StateKey {
                config: initial,
                crashes: vec![0; n],
            },
            parent: None,
            depth: 0,
        }];
        let mut index = StateIndex::new();
        let mut keys: Vec<StateKey> = vec![nodes[0].key.clone()];
        index.insert(&keys[0], 0);
        stats.states_visited = 1;
        stats.frontier_peak = 1;
        depths.observe(0);

        let mut head = 0usize;
        while head < nodes.len() {
            let id = head;
            head += 1;
            let depth = nodes[id].depth as usize;
            if depth >= self.config.max_depth {
                stats.depth_clipped = true;
                continue;
            }
            // Steps, per-process crashes, the system-wide crash, then
            // mid-operation crashes — the same candidate order as the DFS
            // explorer, though breadth-first expansion makes the order
            // irrelevant to the verdict. Faithful to the BFS philosophy,
            // the DFS's no-op skip rules (crashes in the initial state,
            // degenerate mid-operation crashes with no pending invocation)
            // are *not* copied: those successors simply deduplicate or
            // strictly shrink the remaining budget, so verdicts agree.
            let candidates = (0..n)
                .map(|i| Event::Step(ProcessId(i as u16)))
                .chain((0..n).map(|i| Event::Crash(ProcessId(i as u16))))
                .chain(std::iter::once(Event::SystemCrash))
                .chain((0..n).map(|i| Event::CrashDuring(ProcessId(i as u16))));
            for event in candidates {
                if !self.config.fault_model.allows(event) {
                    continue;
                }
                // Budget gating must match the DFS exactly: a system-wide
                // crash charges every process, so it is enabled only while
                // every process still has allowance.
                match event {
                    Event::Crash(p) | Event::CrashDuring(p) => {
                        if nodes[id].key.crashes[p.index()] as usize >= self.config.max_crashes {
                            continue;
                        }
                    }
                    Event::SystemCrash => {
                        if nodes[id]
                            .key
                            .crashes
                            .iter()
                            .any(|&c| c as usize >= self.config.max_crashes)
                        {
                            continue;
                        }
                    }
                    Event::Step(_) => {}
                }
                let mut next = nodes[id].key.config.clone();
                let effect = self.system.apply(&mut next, event);
                stats.events_applied += 1;
                events_counter.incr();
                if let Some(violation) = effect.violation {
                    let mut schedule = self.schedule_to(&nodes, id);
                    schedule.push(event);
                    let report = McReport {
                        stats,
                        coverage: Coverage::Exhaustive,
                        counterexample: Some(McCounterexample {
                            schedule,
                            violation,
                        }),
                    };
                    self.publish(&report, &span);
                    return report;
                }
                let mut crashes = nodes[id].key.crashes.clone();
                match event {
                    Event::Crash(p) | Event::CrashDuring(p) => crashes[p.index()] += 1,
                    Event::SystemCrash => {
                        for c in crashes.iter_mut() {
                            *c += 1;
                        }
                    }
                    Event::Step(_) => {}
                }
                let key = StateKey {
                    config: next,
                    crashes,
                };
                if index.find(&keys, &key).is_some() {
                    stats.dedup_hits += 1;
                    dedup_counter.incr();
                    continue;
                }
                if nodes.len() >= self.config.max_states {
                    stats.state_clipped = true;
                    continue;
                }
                index.insert(&key, nodes.len());
                keys.push(key.clone());
                nodes.push(Node {
                    key,
                    parent: Some((id as u32, event)),
                    depth: (depth + 1) as u16,
                });
                stats.states_visited += 1;
                depths.observe(depth as u64 + 1);
                let frontier = (nodes.len() - head) as u64;
                if frontier > stats.frontier_peak {
                    stats.frontier_peak = frontier;
                }
            }
        }

        let coverage = if stats.state_clipped {
            Coverage::Bounded
        } else {
            Coverage::Exhaustive
        };
        let report = McReport {
            stats,
            coverage,
            counterexample: None,
        };
        self.publish(&report, &span);
        report
    }

    /// The schedule from the initial state to `id`, by parent pointers.
    fn schedule_to(&self, nodes: &[Node], id: usize) -> Schedule {
        let mut events = Vec::new();
        let mut cur = id;
        while let Some((parent, event)) = nodes[cur].parent {
            events.push(event);
            cur = parent as usize;
        }
        events.reverse();
        Schedule::from_events(events)
    }

    /// Publishes the final stats as absolute `mc.*` counters and records
    /// the counterexample (if any) as an event inside the check span.
    fn publish(&self, report: &McReport, span: &rcn_obs::Span) {
        if !self.tracer.enabled() {
            return;
        }
        self.tracer
            .set("mc.states_visited", report.stats.states_visited);
        self.tracer
            .set("mc.frontier_peak", report.stats.frontier_peak);
        self.tracer
            .set("mc.depth_clipped", u64::from(report.stats.depth_clipped));
        self.tracer
            .set("mc.state_clipped", u64::from(report.stats.state_clipped));
        self.tracer.set(
            "mc.counterexamples",
            u64::from(report.counterexample.is_some()),
        );
        if self.tracer.recording() {
            if let Some(cex) = &report.counterexample {
                span.event(
                    "mc.counterexample",
                    i64::try_from(cex.schedule.len()).unwrap_or(i64::MAX),
                    &cex.violation.to_string(),
                );
            }
        }
    }
}

/// One-call breadth-first check with the given budgets.
pub fn model_check(system: &System, config: McConfig) -> McReport {
    ModelChecker::new(system, config).check()
}

/// [`model_check`] with observability (see [`ModelChecker::with_tracer`]).
pub fn model_check_traced(system: &System, config: McConfig, tracer: &Tracer) -> McReport {
    ModelChecker::new(system, config)
        .with_tracer(tracer.clone())
        .check()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcn_protocols::{TasConsensus, TnnRecoverable, TnnWaitFree, TournamentConsensus};
    use rcn_spec::zoo::{Register, StickyBit};
    use std::sync::Arc;

    fn check(system: &System) -> McReport {
        model_check(system, McConfig::default())
    }

    #[test]
    fn rediscovers_golabs_tas_counterexample_at_minimal_depth() {
        let sys = TasConsensus::system(vec![0, 1]);
        let report = check(&sys);
        let cex = report.counterexample.expect("T&S breaks under crashes");
        assert!(!cex.schedule.is_crash_free());
        // The schedule independently replays to the same violation.
        let (_, violation) = sys.run_from_start(&cex.schedule);
        assert_eq!(violation, Some(cex.violation));
        // BFS minimality: no strictly shorter budgeted schedule violates.
        let shorter = model_check(
            &sys,
            McConfig {
                max_depth: cex.schedule.len() - 1,
                ..McConfig::default()
            },
        );
        assert!(shorter.is_certified_clean(), "{:?}", shorter.counterexample);
    }

    #[test]
    fn rediscovers_tnn_bottom_divergence() {
        let sys = TnnWaitFree::system(2, 1, vec![0, 1]);
        let report = check(&sys);
        let cex = report
            .counterexample
            .expect("T_{2,1} wait-free must diverge once the object saturates");
        let (_, violation) = sys.run_from_start(&cex.schedule);
        assert_eq!(violation, Some(cex.violation));
        // The known-minimal divergence is 4 events (p1 p0 c0 p0).
        assert_eq!(cex.schedule.len(), 4);
    }

    #[test]
    fn certifies_tnn_recoverable_clean() {
        let sys = TnnRecoverable::system(5, 2, vec![0, 1]);
        let report = check(&sys);
        assert!(
            report.is_certified_clean(),
            "recoverable T_{{5,2}} must survive every budgeted crash placement: {:?}",
            report.counterexample
        );
        assert!(report.stats.states_visited > 1);
        assert!(report.stats.dedup_hits > 0);
        assert!(report.stats.frontier_peak > 1);
    }

    #[test]
    fn certifies_all_tournament_variants_clean() {
        // Every readable zoo type with a contest witness (T&S has none —
        // that is Golab's separation, pinned in rcn-protocols).
        let variants: Vec<(&str, Arc<dyn rcn_spec::ObjectType + Send + Sync>)> = vec![
            ("sticky", Arc::new(StickyBit::new())),
            ("cas", Arc::new(rcn_spec::zoo::CompareAndSwap::new(3))),
            ("tnn(3,2)", Arc::new(rcn_spec::zoo::Tnn::new(3, 2))),
        ];
        for (label, ty) in variants {
            let sys = TournamentConsensus::try_new(ty, vec![1, 0]).unwrap();
            let report = check(&sys);
            assert!(
                report.is_certified_clean(),
                "{label} tournament must survive every budgeted crash placement: {:?}",
                report.counterexample
            );
        }
    }

    #[test]
    fn zero_crash_budget_certifies_crash_free_correct_protocols() {
        let sys = TasConsensus::system(vec![0, 1]);
        let report = model_check(
            &sys,
            McConfig {
                max_crashes: 0,
                ..McConfig::default()
            },
        );
        assert!(report.is_certified_clean(), "{:?}", report.counterexample);
    }

    #[test]
    fn check_is_deterministic() {
        let sys = TasConsensus::system(vec![0, 1]);
        let first = check(&sys);
        for _ in 0..3 {
            assert_eq!(check(&sys), first);
        }
    }

    #[test]
    fn state_cap_demotes_coverage_honestly() {
        let sys = TnnRecoverable::system(5, 2, vec![0, 1]);
        let report = model_check(
            &sys,
            McConfig {
                max_states: 10,
                ..McConfig::default()
            },
        );
        assert!(report.stats.state_clipped);
        assert_eq!(report.coverage, Coverage::Bounded);
        assert!(!report.is_certified_clean());
    }

    #[test]
    fn time_zero_violations_yield_empty_schedules() {
        // OutputInput outputs its input immediately: mixed inputs violate
        // agreement before any event.
        let sys = System::new(
            Arc::new(rcn_model::OutputInput),
            Arc::new(rcn_model::HeapLayout::new()),
            vec![0, 1],
        );
        let report = check(&sys);
        let cex = report.counterexample.expect("time-zero divergence");
        assert_eq!(cex.schedule.len(), 0);
    }

    #[test]
    fn traced_check_is_transparent_and_counts_the_search() {
        let sys = TnnRecoverable::system(5, 2, vec![0, 1]);
        let tracer = Tracer::metrics_only();
        let traced = model_check_traced(&sys, McConfig::default(), &tracer);
        assert_eq!(traced, check(&sys), "tracing must not perturb the verdict");
        let snap = tracer.snapshot().expect("enabled tracer");
        assert_eq!(
            snap.counter("mc.events_applied"),
            Some(traced.stats.events_applied)
        );
        assert_eq!(
            snap.counter("mc.states_visited"),
            Some(traced.stats.states_visited)
        );
        assert_eq!(snap.counter("mc.dedup_hits"), Some(traced.stats.dedup_hits));
        assert_eq!(
            snap.counter("mc.frontier_peak"),
            Some(traced.stats.frontier_peak)
        );
        assert_eq!(snap.counter("mc.counterexamples"), Some(0));
        let depth = snap
            .histograms
            .iter()
            .find(|h| h.name == "mc.depth")
            .expect("depth histogram");
        assert_eq!(depth.count, traced.stats.states_visited);
    }

    #[test]
    fn no_op_heavy_programs_deduplicate_instead_of_exploding() {
        // A 2-process register ping-pong: most schedules permute into the
        // same few configurations, so dedup must dominate.
        struct Toggle {
            object: rcn_model::ObjectId,
        }
        impl rcn_model::Program for Toggle {
            fn name(&self) -> String {
                "toggle".into()
            }
            fn initial_state(&self, _pid: ProcessId, _input: u32) -> rcn_model::LocalState {
                rcn_model::LocalState::word1(0)
            }
            fn action(&self, _pid: ProcessId, state: &rcn_model::LocalState) -> rcn_model::Action {
                rcn_model::Action::Invoke {
                    object: self.object,
                    op: rcn_spec::OpId::new(1 - state.word(0) as u16),
                }
            }
            fn transition(
                &self,
                _pid: ProcessId,
                state: &rcn_model::LocalState,
                _r: rcn_spec::Response,
            ) -> rcn_model::LocalState {
                rcn_model::LocalState::word1(1 - state.word(0))
            }
        }
        let mut layout = rcn_model::HeapLayout::new();
        let object = layout.add_object("R", Arc::new(Register::new(2)), rcn_spec::ValueId::new(0));
        let sys = System::new_unchecked(Arc::new(Toggle { object }), Arc::new(layout), vec![0, 0]);
        let report = check(&sys);
        assert!(report.is_certified_clean());
        assert!(report.stats.dedup_ratio() > 0.5, "{}", report.stats);
    }
}
