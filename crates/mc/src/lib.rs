//! An independent breadth-first model checker — the second opinion.
//!
//! Every verdict the rest of the workspace emits rests on one algorithm
//! per question: crashtest certifications on `rcn-faults`' memoized DFS,
//! valency facts on `rcn-valency`'s budgeted graph over the decider's
//! `Analysis` lattice. A bug in any one engine's pruning (the depth-cap
//! memoization unsoundness caught in review is the canonical example)
//! silently corrupts verdicts with nothing to notice.
//!
//! `rcn-mc` re-derives both families of verdicts from the `System`
//! semantics alone, by explicit-state breadth-first search over
//! canonically-hashed states, and **deliberately shares no code** with
//! either engine — this crate depends only on `rcn-model` (the semantics
//! under test) and `rcn-obs` (observability). Its own hashing
//! ([`hash`]: FNV-1a plus a collision-safe chained index), its own search
//! ([`checker`]: FIFO frontier, parent pointers, no pruning rules), its
//! own valency fixpoint ([`valency`]: backward worklist over explicit
//! edges). Where the two stacks agree, the verdict no longer hinges on any
//! single implementation being right; where they disagree, the RCN200–203
//! cross-checker lints in `rcn-analyze` turn the divergence into a hard
//! CI failure.
//!
//! Verdicts carry honest coverage tags: [`Coverage::Exhaustive`] means the
//! full stated budget was searched, [`Coverage::Bounded`] means a state
//! cap intervened and a clean answer certifies nothing beyond the states
//! actually stored.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
pub mod hash;
pub mod valency;

pub use checker::{
    model_check, model_check_traced, Coverage, McConfig, McCounterexample, McReport, McStats,
    ModelChecker,
};
pub use hash::{canonical_hash, Fnv1a, StateIndex};
pub use valency::{valency_check, McValency, ValencyConfig, ValencyReport};
