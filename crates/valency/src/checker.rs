//! The protocol checker: safety (agreement, validity) and recoverable
//! wait-freedom, decided exactly on the finite configuration graph.
//!
//! * **Safety** is edge reachability: the executor flags the edge on which a
//!   conflicting or invalid output happens; any reachable flagged edge is a
//!   counterexample, and the BFS parent chain yields a concrete schedule.
//! * **Recoverable wait-freedom** (paper §2: *"a process that executes its
//!   algorithm starting from its initial state either crashes or outputs a
//!   value after a finite number of its own steps"*) is violated iff, for
//!   some process `p`, the graph restricted to configurations where `p` is
//!   undecided and to edges other than `c_p` contains a reachable cycle with
//!   a step of `p`: looping that cycle is an execution in which `p` takes
//!   infinitely many steps, stops crashing, and never outputs. On a finite
//!   graph this is exact — no bounding, no approximation.

use crate::graph::{ConfigGraph, ConfigId, ExploreError};
use rcn_model::{Event, ProcessId, Schedule, System, Violation};
use std::collections::HashMap;
use std::fmt;

/// A concrete counterexample execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// Schedule from the initial configuration to the problem.
    pub prefix: Schedule,
    /// For liveness violations: a cycle that can be looped forever. Empty
    /// for safety violations.
    pub cycle: Schedule,
    /// Human-readable description of what goes wrong.
    pub description: String,
}

impl Counterexample {
    /// Renders the counterexample as a full execution narration: every
    /// event with the configuration it produces, outputs and violations
    /// annotated — [`rcn_model::Execution`]'s display over the prefix (and
    /// one unrolling of the cycle for lassos).
    pub fn render(&self, system: &System) -> String {
        let mut schedule = self.prefix.clone();
        schedule.extend(&self.cycle);
        let exec = rcn_model::Execution::record(system, &schedule);
        if self.cycle.is_empty() {
            format!("{}\n{exec}", self.description)
        } else {
            format!(
                "{} (cycle {} unrolled once)\n{exec}",
                self.description, self.cycle
            )
        }
    }
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cycle.is_empty() {
            write!(f, "{}: {}", self.description, self.prefix)
        } else {
            write!(
                f,
                "{}: {} ({})^ω",
                self.description, self.prefix, self.cycle
            )
        }
    }
}

/// The verdict of [`check_consensus`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The protocol solves recoverable wait-free consensus for this system:
    /// no reachable safety violation and no wait-freedom counterexample.
    Correct,
    /// A safety violation (agreement or validity) is reachable.
    Unsafe {
        /// The violation.
        violation: Violation,
        /// How to reach it.
        counterexample: Counterexample,
    },
    /// Recoverable wait-freedom fails for some process.
    NotRecoverableWaitFree {
        /// The starving process.
        process: ProcessId,
        /// The lasso-shaped counterexample.
        counterexample: Counterexample,
    },
}

impl Verdict {
    /// Returns `true` for [`Verdict::Correct`].
    pub fn is_correct(&self) -> bool {
        matches!(self, Verdict::Correct)
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Correct => write!(f, "correct (safe + recoverable wait-free)"),
            Verdict::Unsafe {
                violation,
                counterexample,
            } => write!(f, "UNSAFE: {violation} via {counterexample}"),
            Verdict::NotRecoverableWaitFree {
                process,
                counterexample,
            } => write!(
                f,
                "NOT RECOVERABLE WAIT-FREE for {process}: {counterexample}"
            ),
        }
    }
}

/// The full report of a model-checking run.
#[derive(Debug)]
pub struct CheckReport {
    /// The verdict.
    pub verdict: Verdict,
    /// Number of configurations explored.
    pub configs: usize,
    /// Whether crash events were part of the exploration.
    pub with_crashes: bool,
}

/// Model-checks a consensus protocol: explores the configuration graph and
/// decides safety and recoverable wait-freedom exactly.
///
/// # Errors
///
/// Returns [`ExploreError::TooLarge`] if the reachable state space exceeds
/// `max_configs`.
///
/// # Examples
///
/// ```
/// use rcn_model::{HeapLayout, OutputInput, System};
/// use rcn_valency::check_consensus;
/// use std::sync::Arc;
///
/// // Equal inputs: outputting your own input is trivially correct.
/// let sys = System::new(Arc::new(OutputInput), Arc::new(HeapLayout::new()), vec![1, 1]);
/// let report = check_consensus(&sys, 10_000).unwrap();
/// assert!(report.verdict.is_correct());
/// ```
pub fn check_consensus(system: &System, max_configs: usize) -> Result<CheckReport, ExploreError> {
    let graph = ConfigGraph::explore(system, max_configs)?;
    let verdict = check_graph(&graph);
    Ok(CheckReport {
        verdict,
        configs: graph.len(),
        with_crashes: true,
    })
}

/// Like [`check_consensus`], on an already-explored graph.
pub fn check_graph(graph: &ConfigGraph) -> Verdict {
    // Outputs made at time zero (initial output states) have no edge to
    // carry their violation; check the initial configuration directly.
    if let Some(violation) = graph.system().check_initial_outputs(graph.config(0)) {
        return Verdict::Unsafe {
            violation,
            counterexample: Counterexample {
                prefix: Schedule::new(),
                cycle: Schedule::new(),
                description: "violated in the initial configuration".into(),
            },
        };
    }
    if let Some((src, edge)) = graph.all_edges().find(|(_, e)| e.violation.is_some()) {
        let mut prefix = graph.path_to(src);
        prefix.push(edge.event);
        return Verdict::Unsafe {
            violation: edge.violation.expect("filtered on Some"),
            counterexample: Counterexample {
                prefix,
                cycle: Schedule::new(),
                description: "safety violation".into(),
            },
        };
    }
    for i in 0..graph.system().n() {
        let p = ProcessId(i as u16);
        if let Some(ce) = starvation_cycle(graph, p) {
            return Verdict::NotRecoverableWaitFree {
                process: p,
                counterexample: ce,
            };
        }
    }
    Verdict::Correct
}

/// Finds a reachable cycle in which `p` steps, never crashes and stays
/// undecided — Tarjan SCCs on the restricted graph, then a cycle walk.
fn starvation_cycle(graph: &ConfigGraph, p: ProcessId) -> Option<Counterexample> {
    let n = graph.len();
    // "Undecided" means: no recorded output AND not sitting in an output
    // state (where steps are no-ops and the process has effectively decided).
    let keep = |id: ConfigId| {
        graph.config(id).decided[p.index()].is_none()
            && !matches!(
                graph.system().action_of(graph.config(id), p),
                rcn_model::Action::Output(_)
            )
    };
    let keep_edge = |e: &rcn_model::Event| !matches!(e, Event::Crash(q) if *q == p);

    let sccs = tarjan(n, |id| {
        if !keep(id) {
            return Vec::new();
        }
        graph
            .edges(id)
            .iter()
            .filter(|e| keep(e.target) && keep_edge(&e.event))
            .map(|e| e.target)
            .collect()
    });

    // An SCC is bad if it contains a Step(p) edge that stays inside it
    // (including self-loops).
    for scc in &sccs {
        if scc.len() == 1 {
            let id = scc[0];
            let has_self_loop = keep(id)
                && graph
                    .edges(id)
                    .iter()
                    .any(|e| e.target == id && keep_edge(&e.event) && e.event == Event::Step(p));
            if !has_self_loop {
                continue;
            }
        }
        let inside: std::collections::HashSet<ConfigId> = scc.iter().copied().collect();
        let step_edge = scc.iter().find_map(|&id| {
            if !keep(id) {
                return None;
            }
            graph
                .edges(id)
                .iter()
                .find(|e| {
                    e.event == Event::Step(p) && inside.contains(&e.target) && keep_edge(&e.event)
                })
                .map(|e| (id, e.target))
        });
        let Some((src, dst)) = step_edge else {
            continue;
        };
        // Build the cycle: src --Step(p)--> dst --…--> src inside the SCC.
        let back = path_within(graph, &inside, dst, src, &keep_edge, &keep)?;
        let mut cycle = Schedule::new();
        cycle.push(Event::Step(p));
        cycle.extend(&back);
        let prefix = graph.path_to(src);
        return Some(Counterexample {
            prefix,
            cycle,
            description: format!("{p} can take infinitely many steps without crashing or deciding"),
        });
    }
    None
}

/// BFS path from `from` to `to` within `inside`, honoring the edge filter.
fn path_within(
    graph: &ConfigGraph,
    inside: &std::collections::HashSet<ConfigId>,
    from: ConfigId,
    to: ConfigId,
    keep_edge: &dyn Fn(&Event) -> bool,
    keep: &dyn Fn(ConfigId) -> bool,
) -> Option<Schedule> {
    if from == to {
        return Some(Schedule::new());
    }
    let mut prev: HashMap<ConfigId, (ConfigId, Event)> = HashMap::new();
    let mut queue = std::collections::VecDeque::from([from]);
    while let Some(id) = queue.pop_front() {
        for e in graph.edges(id) {
            if !inside.contains(&e.target) || !keep_edge(&e.event) || !keep(e.target) {
                continue;
            }
            if e.target != from && !prev.contains_key(&e.target) {
                prev.insert(e.target, (id, e.event));
                if e.target == to {
                    let mut events = Vec::new();
                    let mut cur = to;
                    while cur != from {
                        let (pr, ev) = prev[&cur];
                        events.push(ev);
                        cur = pr;
                    }
                    events.reverse();
                    return Some(Schedule::from_events(events));
                }
                queue.push_back(e.target);
            }
        }
    }
    None
}

/// Iterative Tarjan SCC over an implicit graph. Returns all SCCs (singletons
/// included).
fn tarjan(n: usize, successors: impl Fn(ConfigId) -> Vec<ConfigId>) -> Vec<Vec<ConfigId>> {
    #[derive(Clone, Copy)]
    struct NodeState {
        index: u32,
        lowlink: u32,
        on_stack: bool,
        visited: bool,
    }
    let mut state = vec![
        NodeState {
            index: 0,
            lowlink: 0,
            on_stack: false,
            visited: false,
        };
        n
    ];
    let mut counter = 0u32;
    let mut stack: Vec<ConfigId> = Vec::new();
    let mut sccs: Vec<Vec<ConfigId>> = Vec::new();

    // Explicit DFS stack of (node, successor list, next successor index).
    for root in 0..n {
        if state[root].visited {
            continue;
        }
        let mut dfs: Vec<(ConfigId, Vec<ConfigId>, usize)> = Vec::new();
        state[root].visited = true;
        state[root].index = counter;
        state[root].lowlink = counter;
        counter += 1;
        state[root].on_stack = true;
        stack.push(root);
        dfs.push((root, successors(root), 0));

        while let Some((node, succs, mut i)) = dfs.pop() {
            let mut descended = false;
            while i < succs.len() {
                let next = succs[i];
                i += 1;
                if !state[next].visited {
                    state[next].visited = true;
                    state[next].index = counter;
                    state[next].lowlink = counter;
                    counter += 1;
                    state[next].on_stack = true;
                    stack.push(next);
                    dfs.push((node, succs, i));
                    dfs.push((next, successors(next), 0));
                    descended = true;
                    break;
                } else if state[next].on_stack {
                    state[node].lowlink = state[node].lowlink.min(state[next].index);
                }
            }
            if descended {
                continue;
            }
            // Node finished.
            if state[node].lowlink == state[node].index {
                let mut scc = Vec::new();
                loop {
                    let w = stack.pop().expect("tarjan stack underflow");
                    state[w].on_stack = false;
                    scc.push(w);
                    if w == node {
                        break;
                    }
                }
                sccs.push(scc);
            }
            if let Some(&mut (parent, _, _)) = dfs.last_mut() {
                state[parent].lowlink = state[parent].lowlink.min(state[node].lowlink);
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcn_model::{Action, HeapLayout, LocalState, Program};
    use rcn_spec::zoo::{Register, StickyBit};
    use std::sync::Arc;

    /// A correct 2-process recoverable consensus protocol from a sticky bit:
    /// write your input into the sticky bit and decide what stuck. The
    /// sticky bit records the winner permanently, so crashes are harmless.
    struct StickyConsensus {
        sticky: rcn_model::ObjectId,
    }

    impl Program for StickyConsensus {
        fn name(&self) -> String {
            "sticky-consensus".into()
        }
        fn initial_state(&self, _pid: ProcessId, input: u32) -> LocalState {
            LocalState::word2(input, 0)
        }
        fn action(&self, _pid: ProcessId, state: &LocalState) -> Action {
            match state.word(1) {
                0 => Action::Invoke {
                    object: self.sticky,
                    op: rcn_spec::OpId::new(state.word(0) as u16), // write(input)
                },
                _ => Action::Output(state.word(2)),
            }
        }
        fn transition(
            &self,
            _pid: ProcessId,
            state: &LocalState,
            response: rcn_spec::Response,
        ) -> LocalState {
            LocalState::from_words([state.word(0), 1, response.index() as u32])
        }
    }

    fn sticky_sys(inputs: Vec<u32>) -> System {
        let mut layout = HeapLayout::new();
        let sticky = layout.add_object("S", Arc::new(StickyBit::new()), rcn_spec::ValueId::new(0));
        System::new(
            Arc::new(StickyConsensus { sticky }),
            Arc::new(layout),
            inputs,
        )
    }

    #[test]
    fn sticky_consensus_is_correct_under_crashes() {
        for inputs in [vec![0, 1], vec![1, 0], vec![1, 1], vec![0, 1, 1]] {
            let report = check_consensus(&sticky_sys(inputs.clone()), 100_000).unwrap();
            assert!(
                report.verdict.is_correct(),
                "inputs {inputs:?}: {}",
                report.verdict
            );
        }
    }

    /// A program that loops forever reading a register (never decides).
    struct Spinner {
        reg: rcn_model::ObjectId,
    }

    impl Program for Spinner {
        fn name(&self) -> String {
            "spinner".into()
        }
        fn initial_state(&self, _pid: ProcessId, input: u32) -> LocalState {
            LocalState::word1(input)
        }
        fn action(&self, _pid: ProcessId, _state: &LocalState) -> Action {
            Action::Invoke {
                object: self.reg,
                op: rcn_spec::OpId::new(2),
            }
        }
        fn transition(
            &self,
            _pid: ProcessId,
            state: &LocalState,
            _response: rcn_spec::Response,
        ) -> LocalState {
            state.clone()
        }
    }

    #[test]
    fn spinner_violates_recoverable_wait_freedom() {
        let mut layout = HeapLayout::new();
        let reg = layout.add_object("R", Arc::new(Register::new(2)), rcn_spec::ValueId::new(0));
        let sys = System::new(Arc::new(Spinner { reg }), Arc::new(layout), vec![0, 1]);
        let report = check_consensus(&sys, 10_000).unwrap();
        match report.verdict {
            Verdict::NotRecoverableWaitFree {
                process,
                ref counterexample,
            } => {
                assert_eq!(process, ProcessId(0));
                assert!(!counterexample.cycle.is_empty());
                // The cycle must contain a step of p0 and no crash of p0.
                assert!(counterexample.cycle.steps_of(process) > 0);
                assert_eq!(counterexample.cycle.crashes_of(process), 0);
            }
            ref other => panic!("expected starvation, got {other}"),
        }
    }

    /// Outputs the register's current value — disagreement is reachable.
    struct ReadAndDecide {
        reg: rcn_model::ObjectId,
    }

    impl Program for ReadAndDecide {
        fn name(&self) -> String {
            "read-and-decide".into()
        }
        fn initial_state(&self, _pid: ProcessId, input: u32) -> LocalState {
            LocalState::word2(input, 0)
        }
        fn action(&self, _pid: ProcessId, state: &LocalState) -> Action {
            match state.word(1) {
                0 => Action::Invoke {
                    object: self.reg,
                    op: rcn_spec::OpId::new(state.word(0) as u16), // write input
                },
                1 => Action::Invoke {
                    object: self.reg,
                    op: rcn_spec::OpId::new(2), // read
                },
                _ => Action::Output(state.word(2)),
            }
        }
        fn transition(
            &self,
            _pid: ProcessId,
            state: &LocalState,
            response: rcn_spec::Response,
        ) -> LocalState {
            match state.word(1) {
                0 => LocalState::word2(state.word(0), 1),
                _ => LocalState::from_words([state.word(0), 2, response.index() as u32]),
            }
        }
    }

    #[test]
    fn register_consensus_attempt_is_unsafe() {
        let mut layout = HeapLayout::new();
        let reg = layout.add_object("R", Arc::new(Register::new(2)), rcn_spec::ValueId::new(0));
        let sys = System::new(
            Arc::new(ReadAndDecide { reg }),
            Arc::new(layout),
            vec![0, 1],
        );
        let report = check_consensus(&sys, 100_000).unwrap();
        match report.verdict {
            Verdict::Unsafe {
                violation,
                ref counterexample,
            } => {
                assert!(matches!(violation, Violation::Agreement { .. }));
                // The counterexample must replay to the violation.
                let system = &sys;
                let (_, found) = system.run_from_start(&counterexample.prefix);
                assert!(found.is_some(), "counterexample must replay");
            }
            ref other => panic!("expected unsafe, got {other}"),
        }
    }

    #[test]
    fn tarjan_finds_simple_cycles() {
        // 0 -> 1 -> 2 -> 0, 3 isolated.
        let adj = [vec![1], vec![2], vec![0], vec![]];
        let sccs = tarjan(4, |i| adj[i].clone());
        let big: Vec<_> = sccs.iter().filter(|s| s.len() == 3).collect();
        assert_eq!(big.len(), 1);
        assert_eq!(sccs.iter().map(Vec::len).sum::<usize>(), 4);
    }

    #[test]
    fn tarjan_handles_self_loops_and_chains() {
        // 0 -> 0 (self loop), 0 -> 1.
        let adj = [vec![0, 1], vec![]];
        let sccs = tarjan(2, |i| adj[i].clone());
        assert_eq!(sccs.len(), 2);
    }
}

#[cfg(test)]
mod render_tests {
    use super::*;
    use rcn_model::{HeapLayout, OutputInput, System};
    use std::sync::Arc;

    #[test]
    fn rendered_counterexamples_narrate_the_violation() {
        // Mixed inputs with the trivial output-input program: time-zero
        // agreement violation, rendered as a (degenerate) execution.
        let sys = System::new(
            Arc::new(OutputInput),
            Arc::new(HeapLayout::new()),
            vec![0, 1],
        );
        let graph = crate::ConfigGraph::explore(&sys, 1_000).unwrap();
        match check_graph(&graph) {
            Verdict::Unsafe { counterexample, .. } => {
                let text = counterexample.render(&sys);
                assert!(text.contains("initial configuration"), "{text}");
            }
            other => panic!("expected unsafe, got {other}"),
        }
    }

    #[test]
    fn lasso_render_unrolls_the_cycle() {
        let ce = Counterexample {
            prefix: "p0".parse().unwrap(),
            cycle: "p1 p1".parse().unwrap(),
            description: "demo".into(),
        };
        let sys = System::new(
            Arc::new(OutputInput),
            Arc::new(HeapLayout::new()),
            vec![1, 1],
        );
        let text = ce.render(&sys);
        assert!(text.contains("cycle p1 p1 unrolled once"));
    }
}
