//! Explicit-state exploration of the configuration graph.
//!
//! For finite protocols over finite types the set of reachable
//! configurations is finite, even though executions are unbounded: a crash
//! resets a process to its (finitely many) initial states, so the graph is
//! closed under crash edges. All checking in this crate — safety
//! reachability, recoverable-wait-freedom cycle detection, valency — runs
//! on this graph.

use rcn_model::{Configuration, Event, ProcessId, Schedule, System, Violation};
use std::collections::HashMap;
use std::fmt;

/// Index of a configuration in a [`ConfigGraph`].
pub type ConfigId = usize;

/// One outgoing edge of the configuration graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeInfo {
    /// The event labeling the edge.
    pub event: Event,
    /// The target configuration.
    pub target: ConfigId,
    /// The safety violation triggered by taking this edge, if any.
    pub violation: Option<Violation>,
}

/// Errors from [`ConfigGraph::explore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExploreError {
    /// The reachable state space exceeded the configured limit.
    TooLarge {
        /// The limit that was exceeded.
        limit: usize,
    },
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::TooLarge { limit } => {
                write!(f, "state space exceeds {limit} configurations")
            }
        }
    }
}

impl std::error::Error for ExploreError {}

/// The reachable configuration graph of a [`System`].
///
/// Edges cover every step `p_i` and every crash `c_i` of every process
/// (crashes are unconstrained here — budgets are proof machinery, not part
/// of the correctness conditions being checked).
///
/// # Examples
///
/// ```
/// use rcn_model::{HeapLayout, OutputInput, System};
/// use rcn_valency::ConfigGraph;
/// use std::sync::Arc;
///
/// let sys = System::new(Arc::new(OutputInput), Arc::new(HeapLayout::new()), vec![0, 0]);
/// let graph = ConfigGraph::explore(&sys, 1_000).unwrap();
/// assert_eq!(graph.len(), 1); // output-only program: nothing ever changes
/// ```
pub struct ConfigGraph {
    system: System,
    configs: Vec<Configuration>,
    edges: Vec<Vec<EdgeInfo>>,
    /// BFS parent of each configuration (for counterexample paths).
    parent: Vec<Option<(ConfigId, Event)>>,
}

impl ConfigGraph {
    /// Explores the full reachable graph, up to `max_configs`
    /// configurations.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::TooLarge`] if the limit is exceeded.
    pub fn explore(system: &System, max_configs: usize) -> Result<ConfigGraph, ExploreError> {
        Self::explore_with(system, max_configs, true)
    }

    /// Like [`explore`](Self::explore), with crash events optionally
    /// disabled — the crash-free graph checks plain wait-freedom (Herlihy's
    /// setting), which is how the repro driver shows that §4's wait-free
    /// algorithm is correct exactly until crashes are allowed.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::TooLarge`] if the limit is exceeded.
    pub fn explore_with(
        system: &System,
        max_configs: usize,
        with_crashes: bool,
    ) -> Result<ConfigGraph, ExploreError> {
        let n = system.n();
        let mut configs = Vec::new();
        let mut index: HashMap<Configuration, ConfigId> = HashMap::new();
        let mut edges: Vec<Vec<EdgeInfo>> = Vec::new();
        let mut parent: Vec<Option<(ConfigId, Event)>> = Vec::new();

        let init = system.initial_config();
        configs.push(init.clone());
        index.insert(init, 0);
        edges.push(Vec::new());
        parent.push(None);

        let mut frontier = 0usize;
        while frontier < configs.len() {
            let id = frontier;
            frontier += 1;
            let mut out = Vec::with_capacity(2 * n);
            for i in 0..n {
                let p = ProcessId(i as u16);
                let events: &[Event] = if with_crashes {
                    &[Event::Step(p), Event::Crash(p)]
                } else {
                    &[Event::Step(p)]
                };
                for &event in events {
                    let mut next = configs[id].clone();
                    let effect = system.apply(&mut next, event);
                    let target = match index.get(&next) {
                        Some(&t) => t,
                        None => {
                            if configs.len() >= max_configs {
                                return Err(ExploreError::TooLarge { limit: max_configs });
                            }
                            let t = configs.len();
                            configs.push(next.clone());
                            index.insert(next, t);
                            edges.push(Vec::new());
                            parent.push(Some((id, event)));
                            t
                        }
                    };
                    out.push(EdgeInfo {
                        event,
                        target,
                        violation: effect.violation,
                    });
                }
            }
            edges[id] = out;
        }

        Ok(ConfigGraph {
            system: system.clone(),
            configs,
            edges,
            parent,
        })
    }

    /// Number of reachable configurations.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// Returns `true` if the graph is empty (never: the initial
    /// configuration is always present).
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// The configuration with the given id (0 is the initial one).
    pub fn config(&self, id: ConfigId) -> &Configuration {
        &self.configs[id]
    }

    /// Outgoing edges of a configuration.
    pub fn edges(&self, id: ConfigId) -> &[EdgeInfo] {
        &self.edges[id]
    }

    /// The system the graph was built from.
    pub fn system(&self) -> &System {
        &self.system
    }

    /// A schedule from the initial configuration to `id`, following BFS
    /// parents.
    pub fn path_to(&self, id: ConfigId) -> Schedule {
        let mut events = Vec::new();
        let mut cur = id;
        while let Some((prev, event)) = self.parent[cur] {
            events.push(event);
            cur = prev;
        }
        events.reverse();
        Schedule::from_events(events)
    }

    /// Iterates over `(source, edge)` pairs of the whole graph.
    pub fn all_edges(&self) -> impl Iterator<Item = (ConfigId, &EdgeInfo)> {
        self.edges
            .iter()
            .enumerate()
            .flat_map(|(src, outs)| outs.iter().map(move |e| (src, e)))
    }
}

impl fmt::Debug for ConfigGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ConfigGraph")
            .field("configs", &self.configs.len())
            .field("edges", &self.edges.iter().map(Vec::len).sum::<usize>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcn_model::{Action, HeapLayout, LocalState, Program};
    use rcn_spec::zoo::Register;
    use std::sync::Arc;

    /// Writes its input into a register, reads it back, outputs the read.
    struct WriteThenRead {
        reg: rcn_model::ObjectId,
    }

    impl Program for WriteThenRead {
        fn name(&self) -> String {
            "write-then-read".into()
        }
        fn initial_state(&self, _pid: ProcessId, input: u32) -> LocalState {
            LocalState::word2(input, 0)
        }
        fn action(&self, _pid: ProcessId, state: &LocalState) -> Action {
            match state.word(1) {
                0 => Action::Invoke {
                    object: self.reg,
                    op: rcn_spec::OpId::new(state.word(0) as u16), // write(input)
                },
                1 => Action::Invoke {
                    object: self.reg,
                    op: rcn_spec::OpId::new(2), // read
                },
                _ => Action::Output(state.word(2)),
            }
        }
        fn transition(
            &self,
            _pid: ProcessId,
            state: &LocalState,
            response: rcn_spec::Response,
        ) -> LocalState {
            match state.word(1) {
                0 => LocalState::word2(state.word(0), 1),
                _ => LocalState::from_words([state.word(0), 2, response.index() as u32]),
            }
        }
    }

    fn sys(inputs: Vec<u32>) -> System {
        let mut layout = HeapLayout::new();
        let reg = layout.add_object("R", Arc::new(Register::new(2)), rcn_spec::ValueId::new(0));
        System::new(Arc::new(WriteThenRead { reg }), Arc::new(layout), inputs)
    }

    #[test]
    fn exploration_terminates_and_is_closed() {
        let graph = ConfigGraph::explore(&sys(vec![0, 1]), 100_000).unwrap();
        assert!(graph.len() > 1);
        // Every edge target is in range.
        for (_, e) in graph.all_edges() {
            assert!(e.target < graph.len());
        }
        // Every configuration has 2n outgoing edges (n with crashes off).
        for id in 0..graph.len() {
            assert_eq!(graph.edges(id).len(), 4);
        }
        let system = graph.system().clone();
        let crash_free = ConfigGraph::explore_with(&system, 100_000, false).unwrap();
        assert!(crash_free.len() <= graph.len());
        for id in 0..crash_free.len() {
            assert_eq!(crash_free.edges(id).len(), 2);
        }
    }

    #[test]
    fn limit_is_enforced() {
        match ConfigGraph::explore(&sys(vec![0, 1]), 2) {
            Err(ExploreError::TooLarge { limit }) => assert_eq!(limit, 2),
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn paths_replay_to_their_configuration() {
        let system = sys(vec![0, 1]);
        let graph = ConfigGraph::explore(&system, 100_000).unwrap();
        for id in (0..graph.len()).step_by(3) {
            let schedule = graph.path_to(id);
            let (config, _) = system.run_from_start(&schedule);
            assert_eq!(&config, graph.config(id), "path {schedule}");
        }
    }

    #[test]
    fn crash_edges_return_to_initial_states() {
        let system = sys(vec![1, 0]);
        let graph = ConfigGraph::explore(&system, 100_000).unwrap();
        let init = graph.config(0).clone();
        for (src, e) in graph.all_edges() {
            if let Event::Crash(p) = e.event {
                let target = graph.config(e.target);
                assert_eq!(
                    target.states[p.index()],
                    init.states[p.index()],
                    "crash of {p} from config {src}"
                );
            }
        }
    }

    #[test]
    fn write_then_read_has_agreement_violations_reachable() {
        // This naive program does NOT solve consensus: p0 writes 0, p1
        // overwrites 1, both read different values at different times.
        let graph = ConfigGraph::explore(&sys(vec![0, 1]), 100_000).unwrap();
        assert!(
            graph.all_edges().any(|(_, e)| e.violation.is_some()),
            "expected a reachable agreement violation"
        );
    }
}
