//! The Theorem 13 chain construction (Figures 1 and 2), mechanized.
//!
//! The paper's main proof builds configurations `D_0, D'_0, …, D_ℓ, D'_ℓ`:
//! each `D'_i` is reached from `D_i` by a critical execution; if `D'_i` is
//! *n-recording* the construction stops (the object's type is n-recording);
//! if it is *v-hiding* the processes `p_{n-i}, …, p_{n-1}` crash
//! (`λ_{n-i}`) and the search repeats (Figure 2); the "neither" case is
//! resolved once at the start via `p_{n-1} c_{n-1}` (Figure 1).
//!
//! [`theorem13_chain`] follows exactly that recipe on a concrete protocol,
//! over the clamped `E_z*` exploration of [`BudgetedGraph`]. For the
//! protocols in this repository the very first critical configuration
//! classifies as n-recording (length-0 chains) — the walk exists to
//! demonstrate and test the proof's control flow, and to report faithfully
//! should a protocol ever present hiding or colliding criticals.

use crate::graph::ExploreError;
use crate::valency::{BudgetedGraph, CriticalClass, CriticalInfo};
use rcn_model::{Event, ProcessId, Schedule, System};

/// One link of the chain: the critical execution found at this stage and
/// its classification.
#[derive(Debug, Clone)]
pub struct ChainLink {
    /// Schedule from the stage's starting configuration to the critical
    /// configuration (the execution `α_i`).
    pub critical: CriticalInfo,
    /// The crash schedule appended after this link (`λ_k`, or the
    /// Figure 1 `p_{n-1} c_{n-1}` step), empty for the final link.
    pub continuation: Schedule,
}

/// The result of walking the Theorem 13 construction.
#[derive(Debug, Clone)]
pub struct ChainReport {
    /// The links `(D_i, D'_i)` in order.
    pub links: Vec<ChainLink>,
    /// Whether the walk ended at an n-recording configuration (the
    /// theorem's conclusion).
    pub reached_recording: bool,
}

impl ChainReport {
    /// The full schedule of the walk, concatenating every critical
    /// execution and continuation.
    pub fn full_schedule(&self) -> Schedule {
        let mut out = Schedule::new();
        for link in &self.links {
            out.extend(&link.critical.schedule);
            out.extend(&link.continuation);
        }
        out
    }
}

/// Errors from [`theorem13_chain`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// Exploration exceeded the state limit.
    Explore(ExploreError),
    /// No critical configuration was found (the protocol is not a correct
    /// bivalent-start consensus algorithm, or the clamp is too tight).
    NoCritical,
    /// A critical configuration could not be classified (no common object).
    Unclassifiable,
    /// The chain exceeded `n` links, which Theorem 13 proves impossible for
    /// a correct algorithm — report rather than loop.
    TooLong,
}

impl std::fmt::Display for ChainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChainError::Explore(e) => write!(f, "exploration failed: {e}"),
            ChainError::NoCritical => write!(f, "no critical configuration found"),
            ChainError::Unclassifiable => write!(f, "critical configuration unclassifiable"),
            ChainError::TooLong => write!(f, "chain exceeded n links (impossible per Theorem 13)"),
        }
    }
}

impl std::error::Error for ChainError {}

impl From<ExploreError> for ChainError {
    fn from(e: ExploreError) -> Self {
        ChainError::Explore(e)
    }
}

/// Walks the Theorem 13 construction on `system`: find a critical
/// execution, classify it, and while it is not n-recording append the
/// paper's crash continuation and repeat from the resulting configuration.
///
/// `z`, `clamp` and `max_states` parameterize each stage's
/// [`BudgetedGraph`] exploration.
///
/// # Errors
///
/// Returns [`ChainError`] if exploration blows the limit, no critical
/// configuration exists, or the chain exceeds `n` links.
pub fn theorem13_chain(
    system: &System,
    z: usize,
    clamp: u16,
    max_states: usize,
) -> Result<ChainReport, ChainError> {
    let n = system.n();
    let mut links = Vec::new();
    let mut prefix = Schedule::new();
    // Stage i: explore from the configuration reached by `prefix`.
    for stage in 0..=n {
        let graph = BudgetedGraph::explore_from(system, &prefix, z, clamp, max_states)?;
        let critical = graph.find_critical().ok_or(ChainError::NoCritical)?;
        let info = graph.analyze_critical(critical);
        let class = info.class.clone().ok_or(ChainError::Unclassifiable)?;
        match class {
            CriticalClass::Recording => {
                links.push(ChainLink {
                    critical: info,
                    continuation: Schedule::new(),
                });
                return Ok(ChainReport {
                    links,
                    reached_recording: true,
                });
            }
            CriticalClass::Hiding(_) => {
                // Figure 2: crash the suffix p_{n-i-1}, …, p_{n-1}.
                let k = n.saturating_sub(stage + 1).max(1);
                let continuation = Schedule::lambda(k, n);
                prefix.extend(&info.critical_schedule_with(&continuation));
                links.push(ChainLink {
                    critical: info,
                    continuation,
                });
            }
            CriticalClass::Colliding => {
                // Figure 1: step then crash the highest process.
                let p = ProcessId((n - 1) as u16);
                let continuation = Schedule::from_events([Event::Step(p), Event::Crash(p)]);
                prefix.extend(&info.critical_schedule_with(&continuation));
                links.push(ChainLink {
                    critical: info,
                    continuation,
                });
            }
        }
    }
    Err(ChainError::TooLong)
}

impl CriticalInfo {
    /// The critical execution followed by a continuation, as one schedule.
    fn critical_schedule_with(&self, continuation: &Schedule) -> Schedule {
        self.schedule.concat(continuation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcn_model::{Action, HeapLayout, LocalState, Program};
    use rcn_spec::zoo::StickyBit;
    use std::sync::Arc;

    /// Sticky-bit consensus, as in the sibling modules' tests.
    struct StickyConsensus {
        sticky: rcn_model::ObjectId,
    }

    impl Program for StickyConsensus {
        fn name(&self) -> String {
            "sticky-consensus".into()
        }
        fn initial_state(&self, _pid: ProcessId, input: u32) -> LocalState {
            LocalState::word2(input, 0)
        }
        fn action(&self, _pid: ProcessId, state: &LocalState) -> Action {
            match state.word(1) {
                0 => Action::Invoke {
                    object: self.sticky,
                    op: rcn_spec::OpId::new(state.word(0) as u16),
                },
                _ => Action::Output(state.word(2)),
            }
        }
        fn transition(
            &self,
            _pid: ProcessId,
            state: &LocalState,
            response: rcn_spec::Response,
        ) -> LocalState {
            LocalState::from_words([state.word(0), 1, response.index() as u32])
        }
    }

    fn sticky_sys(inputs: Vec<u32>) -> System {
        let mut layout = HeapLayout::new();
        let sticky = layout.add_object("S", Arc::new(StickyBit::new()), rcn_spec::ValueId::new(0));
        System::new(
            Arc::new(StickyConsensus { sticky }),
            Arc::new(layout),
            inputs,
        )
    }

    #[test]
    fn sticky_chain_terminates_immediately_at_recording() {
        let report = theorem13_chain(&sticky_sys(vec![0, 1]), 1, 6, 200_000).unwrap();
        assert!(report.reached_recording);
        assert_eq!(report.links.len(), 1);
        assert!(report.links[0].continuation.is_empty());
    }

    #[test]
    fn chain_full_schedule_replays_cleanly() {
        let sys = sticky_sys(vec![0, 1]);
        let report = theorem13_chain(&sys, 1, 6, 200_000).unwrap();
        let sched = report.full_schedule();
        let (_, violation) = sys.run_from_start(&sched);
        assert!(violation.is_none());
    }

    #[test]
    fn uniform_inputs_have_no_critical() {
        // Univalent from the start: no bivalent configuration exists.
        let err = theorem13_chain(&sticky_sys(vec![1, 1]), 1, 6, 200_000).unwrap_err();
        assert_eq!(err, ChainError::NoCritical);
    }
}
