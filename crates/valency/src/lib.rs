//! # rcn-valency — model checking recoverable consensus protocols
//!
//! Two complementary engines, both exact on finite protocols:
//!
//! * [`ConfigGraph`] / [`check_consensus`] — explores every reachable
//!   configuration under unconstrained steps and crashes and decides
//!   **agreement**, **validity** and **recoverable wait-freedom** (the
//!   paper's §2 progress condition) exactly; counterexamples come out as
//!   replayable schedules (safety) or lassos (liveness).
//! * [`BudgetedGraph`] — explores exactly the crash-budgeted executions
//!   `E_z*(C)` of §3 (with a clamp on stored allowances) and mechanizes the
//!   paper's valency machinery: bivalence (Observation 1), critical
//!   executions (Lemma 6), teams (Lemma 7), the common poised object
//!   (Lemma 9), and the Observation 11 trichotomy
//!   (*n-recording* / *v-hiding* / colliding).
//!
//! ## Quickstart
//!
//! ```
//! use rcn_model::{HeapLayout, OutputInput, System};
//! use rcn_valency::check_consensus;
//! use std::sync::Arc;
//!
//! let sys = System::new(Arc::new(OutputInput), Arc::new(HeapLayout::new()), vec![0, 0]);
//! assert!(check_consensus(&sys, 1_000).unwrap().verdict.is_correct());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chain;
mod checker;
mod graph;
mod valency;

pub use chain::{theorem13_chain, ChainError, ChainLink, ChainReport};
pub use checker::{check_consensus, check_graph, CheckReport, Counterexample, Verdict};
pub use graph::{ConfigGraph, ConfigId, EdgeInfo, ExploreError};
pub use valency::{BudgetedGraph, CriticalClass, CriticalInfo, Valency};
