//! The paper's §3 valency machinery, mechanized on bounded instances.
//!
//! The proof of Theorem 13 works with the crash-budgeted execution sets
//! `E_z*(C)`: `p_i` may crash at most `z·n ×` (steps of lower-id processes)
//! times, checked at every prefix. We explore exactly those executions as a
//! graph over *budgeted states* — `(configuration, remaining crash
//! allowance per process)` — with one approximation that keeps the state
//! space finite: allowances are clamped at a configurable ceiling. Every
//! execution explored is genuinely in `E_z*(C)`; executions whose allowance
//! ever needs to exceed the clamp are missed, so:
//!
//! * **bivalence** found here is sound (both deciding extensions are real
//!   `E_z*` executions);
//! * **criticality** is relative to the clamped set (a critical state here
//!   is "critical up to the clamp").
//!
//! On top of the graph we mechanize the paper's per-lemma checks for a
//! critical execution `α`: both teams nonempty (Lemma 7), all processes
//! poised on one object (Lemma 9), and the trichotomy of Observation 11 —
//! the final configuration is *n-recording*, *v-hiding*, or has colliding
//! values — computed with the same `U_x` reachability used by the deciders.

use crate::graph::ExploreError;
use rcn_decide::Analysis;
use rcn_model::{Action, Configuration, Event, ObjectId, ProcessId, Schedule, System};
use rcn_spec::{OpId, ValueId};
use std::collections::HashMap;
use std::fmt;

/// A configuration plus clamped crash allowances (the `E_z*` budget state).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct BudgetedState {
    config: Configuration,
    /// `allowance[i]` = how many more times `p_i` may crash (clamped).
    /// `allowance[0]` is always 0: `p_0` never crashes.
    allowance: Vec<u16>,
}

/// Valency of a state with respect to the explored execution set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Valency {
    /// Both 0-deciding and 1-deciding extensions exist.
    Bivalent,
    /// Only `v`-deciding extensions exist.
    Univalent(u32),
    /// No deciding extension was found (indicates a liveness bug or an
    /// over-tight clamp).
    Undetermined,
}

impl fmt::Display for Valency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Valency::Bivalent => write!(f, "bivalent"),
            Valency::Univalent(v) => write!(f, "{v}-univalent"),
            Valency::Undetermined => write!(f, "undetermined"),
        }
    }
}

/// The Observation 11 trichotomy for a critical configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CriticalClass {
    /// `U_0 ∩ U_1 = ∅` and the hiding clause holds: the configuration is
    /// *n-recording* (which certifies the object's type is n-recording).
    Recording,
    /// `U_0 ∩ U_1 = ∅` but the current value of `O` is in `U_v`: *v-hiding*.
    Hiding(u32),
    /// The two teams can drive `O` to a common value.
    Colliding,
}

impl fmt::Display for CriticalClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CriticalClass::Recording => write!(f, "n-recording"),
            CriticalClass::Hiding(v) => write!(f, "{v}-hiding"),
            CriticalClass::Colliding => write!(f, "colliding"),
        }
    }
}

/// Everything the machinery derives about one critical execution.
#[derive(Debug, Clone)]
pub struct CriticalInfo {
    /// Schedule of the critical execution `α` from the initial
    /// configuration.
    pub schedule: Schedule,
    /// The valency of `α p_i` for each undecided process (its *team*).
    pub teams: Vec<Option<u32>>,
    /// The single object all undecided processes are poised to access
    /// (Lemma 9), if indeed single.
    pub object: Option<ObjectId>,
    /// The Observation 11 classification, when `object` is `Some`.
    pub class: Option<CriticalClass>,
}

/// The explored `E_z*` execution graph with valencies.
pub struct BudgetedGraph {
    system: System,
    states: Vec<BudgetedState>,
    edges: Vec<Vec<(Event, usize)>>,
    parent: Vec<Option<(usize, Event)>>,
    valency: Vec<Valency>,
    z: usize,
    clamp: u16,
}

impl BudgetedGraph {
    /// Explores the `E_z*` executions of `system` (allowances clamped at
    /// `clamp`), up to `max_states` budgeted states, and computes
    /// valencies.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::TooLarge`] if the limit is exceeded.
    pub fn explore(
        system: &System,
        z: usize,
        clamp: u16,
        max_states: usize,
    ) -> Result<BudgetedGraph, ExploreError> {
        Self::explore_from(system, &rcn_model::Schedule::new(), z, clamp, max_states)
    }

    /// Like [`explore`](Self::explore), but starting from the configuration
    /// reached by running `prefix` from the initial configuration, with
    /// fresh crash allowances — matching the paper's per-stage sets
    /// `E_z*(D_i)`, which restart the budget at each `D_i`.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::TooLarge`] if the limit is exceeded.
    pub fn explore_from(
        system: &System,
        prefix: &rcn_model::Schedule,
        z: usize,
        clamp: u16,
        max_states: usize,
    ) -> Result<BudgetedGraph, ExploreError> {
        let n = system.n();
        let (start, _) = {
            let mut config = system.initial_config();
            system.run(&mut config, prefix);
            (config, ())
        };
        let init = BudgetedState {
            config: start,
            allowance: vec![0; n],
        };
        let mut states = vec![init.clone()];
        let mut index: HashMap<BudgetedState, usize> = HashMap::from([(init, 0)]);
        let mut edges: Vec<Vec<(Event, usize)>> = vec![Vec::new()];
        let mut parent: Vec<Option<(usize, Event)>> = vec![None];

        let mut frontier = 0;
        while frontier < states.len() {
            let id = frontier;
            frontier += 1;
            let state = states[id].clone();
            let mut out = Vec::new();
            for i in 0..n {
                let p = ProcessId(i as u16);
                let mut candidates = vec![Event::Step(p)];
                if i > 0 && state.allowance[i] > 0 {
                    candidates.push(Event::Crash(p));
                }
                for event in candidates {
                    let mut next = state.clone();
                    system.apply(&mut next.config, event);
                    match event {
                        Event::Step(_) => {
                            // A step of p_i funds z·n crashes of every
                            // higher-id process.
                            for a in next.allowance.iter_mut().skip(i + 1) {
                                *a = (*a).saturating_add((z * n) as u16).min(clamp);
                            }
                        }
                        Event::Crash(_) => {
                            next.allowance[i] -= 1;
                        }
                        // The E_z graphs are defined over the paper's §3
                        // budget model, which has only per-process events.
                        Event::SystemCrash | Event::CrashDuring(_) => {
                            unreachable!("E_z graphs enumerate only steps and per-process crashes")
                        }
                    }
                    let target = match index.get(&next) {
                        Some(&t) => t,
                        None => {
                            if states.len() >= max_states {
                                return Err(ExploreError::TooLarge { limit: max_states });
                            }
                            let t = states.len();
                            states.push(next.clone());
                            index.insert(next, t);
                            edges.push(Vec::new());
                            parent.push(Some((id, event)));
                            t
                        }
                    };
                    out.push((event, target));
                }
            }
            edges[id] = out;
        }

        let valency = compute_valencies(&states, &edges);
        Ok(BudgetedGraph {
            system: system.clone(),
            states,
            edges,
            parent,
            valency,
            z,
            clamp,
        })
    }

    /// Number of budgeted states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Returns `true` if the graph is empty (never).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The budget multiplier `z`.
    pub fn z(&self) -> usize {
        self.z
    }

    /// The allowance clamp.
    pub fn clamp(&self) -> u16 {
        self.clamp
    }

    /// The valency of a state.
    pub fn valency(&self, id: usize) -> Valency {
        self.valency[id]
    }

    /// Outgoing `(event, target)` edges of a budgeted state.
    pub fn successors(&self, id: usize) -> &[(Event, usize)] {
        &self.edges[id]
    }

    /// The valency of the initial state.
    pub fn initial_valency(&self) -> Valency {
        self.valency[0]
    }

    /// Schedule from the initial state to `id`.
    pub fn path_to(&self, id: usize) -> Schedule {
        let mut events = Vec::new();
        let mut cur = id;
        while let Some((prev, event)) = self.parent[cur] {
            events.push(event);
            cur = prev;
        }
        events.reverse();
        Schedule::from_events(events)
    }

    /// Finds a *critical* state: bivalent, with every successor univalent
    /// (criticality relative to the clamped execution set; cf. Lemma 6(a)).
    pub fn find_critical(&self) -> Option<usize> {
        (0..self.len()).find(|&id| {
            self.valency[id] == Valency::Bivalent
                && self.edges[id]
                    .iter()
                    .all(|&(_, t)| matches!(self.valency[t], Valency::Univalent(_)))
        })
    }

    /// Mechanizes the paper's analysis of a critical state: teams
    /// (valencies of `α p_i`), the common poised object (Lemma 9), and the
    /// Observation 11 classification.
    pub fn analyze_critical(&self, id: usize) -> CriticalInfo {
        let n = self.system.n();
        let config = &self.states[id].config;
        let mut teams = vec![None; n];
        for &(event, target) in &self.edges[id] {
            if let Event::Step(p) = event {
                if let Valency::Univalent(v) = self.valency[target] {
                    teams[p.index()] = Some(v);
                }
            }
        }
        // Lemma 9: every undecided process poised on the same object.
        let mut object: Option<ObjectId> = None;
        let mut same = true;
        let mut poised_ops: Vec<Option<OpId>> = vec![None; n];
        for (i, poised) in poised_ops.iter_mut().enumerate() {
            let p = ProcessId(i as u16);
            if config.decided[i].is_some() {
                continue;
            }
            match self.system.action_of(config, p) {
                Action::Invoke { object: o, op } => {
                    *poised = Some(op);
                    match object {
                        None => object = Some(o),
                        Some(prev) if prev == o => {}
                        Some(_) => same = false,
                    }
                }
                Action::Output(_) => {}
            }
        }
        let object = if same { object } else { None };
        let class = object.and_then(|o| self.classify_critical(config, o, &teams, &poised_ops));
        CriticalInfo {
            schedule: self.path_to(id),
            teams,
            object,
            class,
        }
    }

    fn classify_critical(
        &self,
        config: &Configuration,
        object: ObjectId,
        teams: &[Option<u32>],
        poised_ops: &[Option<OpId>],
    ) -> Option<CriticalClass> {
        // Gather the processes that are poised with a known team.
        let mut procs: Vec<(usize, OpId, u32)> = Vec::new();
        for (i, (team, op)) in teams.iter().zip(poised_ops).enumerate() {
            if let (Some(team), Some(op)) = (team, op) {
                procs.push((i, *op, *team));
            }
        }
        if procs.is_empty() {
            return None;
        }
        let ty = self.system.layout().object_type(object);
        let u: ValueId = config.values[object.index()];
        let ops: Vec<OpId> = procs.iter().map(|&(_, op, _)| op).collect();
        let analysis = Analysis::new(ty, u, &ops);
        let t0: Vec<usize> = procs
            .iter()
            .enumerate()
            .filter(|(_, &(_, _, team))| team == 0)
            .map(|(k, _)| k)
            .collect();
        let t1: Vec<usize> = procs
            .iter()
            .enumerate()
            .filter(|(_, &(_, _, team))| team == 1)
            .map(|(k, _)| k)
            .collect();
        if t0.is_empty() || t1.is_empty() {
            return None;
        }
        let u0 = analysis.value_set(&t0);
        let u1 = analysis.value_set(&t1);
        if u0.intersects(&u1) {
            return Some(CriticalClass::Colliding);
        }
        let hiding0 = u0.contains(u.index());
        let hiding1 = u1.contains(u.index());
        // n-recording: disjoint, and if u ∈ U_x then |T_x̄| = 1.
        let recording_ok = (!hiding0 || t1.len() == 1) && (!hiding1 || t0.len() == 1);
        if recording_ok {
            Some(CriticalClass::Recording)
        } else if hiding0 {
            Some(CriticalClass::Hiding(0))
        } else {
            Some(CriticalClass::Hiding(1))
        }
    }
}

/// Backward fixpoint: which states can reach a 0-decision / a 1-decision.
fn compute_valencies(states: &[BudgetedState], edges: &[Vec<(Event, usize)>]) -> Vec<Valency> {
    let n = states.len();
    let mut reach0 = vec![false; n];
    let mut reach1 = vec![false; n];
    for (i, s) in states.iter().enumerate() {
        for d in s.config.decided.iter().flatten() {
            match d {
                0 => reach0[i] = true,
                _ => reach1[i] = true,
            }
        }
    }
    // Fixpoint sweeps (the graph is small; simple iteration suffices).
    let mut changed = true;
    while changed {
        changed = false;
        for i in (0..n).rev() {
            for &(_, t) in &edges[i] {
                if reach0[t] && !reach0[i] {
                    reach0[i] = true;
                    changed = true;
                }
                if reach1[t] && !reach1[i] {
                    reach1[i] = true;
                    changed = true;
                }
            }
        }
    }
    (0..n)
        .map(|i| match (reach0[i], reach1[i]) {
            (true, true) => Valency::Bivalent,
            (true, false) => Valency::Univalent(0),
            (false, true) => Valency::Univalent(1),
            (false, false) => Valency::Undetermined,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcn_model::{HeapLayout, LocalState, Program};
    use rcn_spec::zoo::StickyBit;
    use std::sync::Arc;

    /// 2-process sticky-bit consensus (same protocol as in checker tests).
    struct StickyConsensus {
        sticky: ObjectId,
    }

    impl Program for StickyConsensus {
        fn name(&self) -> String {
            "sticky-consensus".into()
        }
        fn initial_state(&self, _pid: ProcessId, input: u32) -> LocalState {
            LocalState::word2(input, 0)
        }
        fn action(&self, _pid: ProcessId, state: &LocalState) -> Action {
            match state.word(1) {
                0 => Action::Invoke {
                    object: self.sticky,
                    op: rcn_spec::OpId::new(state.word(0) as u16),
                },
                _ => Action::Output(state.word(2)),
            }
        }
        fn transition(
            &self,
            _pid: ProcessId,
            state: &LocalState,
            response: rcn_spec::Response,
        ) -> LocalState {
            LocalState::from_words([state.word(0), 1, response.index() as u32])
        }
    }

    fn sticky_sys(inputs: Vec<u32>) -> System {
        let mut layout = HeapLayout::new();
        let sticky = layout.add_object("S", Arc::new(StickyBit::new()), rcn_spec::ValueId::new(0));
        System::new(
            Arc::new(StickyConsensus { sticky }),
            Arc::new(layout),
            inputs,
        )
    }

    #[test]
    fn initial_mixed_input_state_is_bivalent() {
        // Observation 1 of the paper, mechanized.
        let graph = BudgetedGraph::explore(&sticky_sys(vec![0, 1]), 1, 6, 100_000).unwrap();
        assert_eq!(graph.initial_valency(), Valency::Bivalent);
    }

    #[test]
    fn uniform_inputs_are_univalent() {
        // Validity forces 1-univalence when every input is 1.
        let graph = BudgetedGraph::explore(&sticky_sys(vec![1, 1]), 1, 6, 100_000).unwrap();
        assert_eq!(graph.initial_valency(), Valency::Univalent(1));
    }

    #[test]
    fn critical_state_exists_and_classifies_as_recording() {
        // For the sticky bit the critical configuration has both processes
        // poised to write; the witness is recording (sticky bits record the
        // first writer permanently), matching Theorem 13's conclusion.
        let graph = BudgetedGraph::explore(&sticky_sys(vec![0, 1]), 1, 6, 100_000).unwrap();
        let critical = graph.find_critical().expect("critical state exists");
        let info = graph.analyze_critical(critical);
        assert!(info.object.is_some(), "Lemma 9: common object");
        // Lemma 7: both teams nonempty.
        let teams: Vec<u32> = info.teams.iter().flatten().copied().collect();
        assert!(teams.contains(&0) && teams.contains(&1), "teams: {teams:?}");
        assert_eq!(info.class, Some(CriticalClass::Recording));
    }

    #[test]
    fn critical_execution_replays_to_a_bivalent_state() {
        let sys = sticky_sys(vec![0, 1]);
        let graph = BudgetedGraph::explore(&sys, 1, 6, 100_000).unwrap();
        let critical = graph.find_critical().unwrap();
        let schedule = graph.path_to(critical);
        // Replaying the schedule must not decide anything yet.
        let (config, violation) = sys.run_from_start(&schedule);
        assert!(violation.is_none());
        assert!(config.outputs().is_empty(), "critical ⇒ nobody decided");
    }

    #[test]
    fn budget_limits_crash_events() {
        // With z=1, n=2: p1 can only crash after p0 stepped.
        let graph = BudgetedGraph::explore(&sticky_sys(vec![0, 1]), 1, 4, 100_000).unwrap();
        // State 0 has no crash edges at all (no allowance yet).
        let crashes_at_init = graph.edges[0].iter().filter(|(e, _)| e.is_crash()).count();
        assert_eq!(crashes_at_init, 0);
    }

    #[test]
    fn explore_limit_is_enforced() {
        match BudgetedGraph::explore(&sticky_sys(vec![0, 1]), 1, 6, 3) {
            Err(ExploreError::TooLarge { limit }) => assert_eq!(limit, 3),
            other => panic!("expected TooLarge, got {:?}", other.map(|g| g.len())),
        }
    }
}
