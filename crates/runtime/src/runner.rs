//! The threaded runner: executes a protocol's processes on OS threads over
//! an [`NvHeap`](crate::NvHeap), injecting crashes.
//!
//! A crash destroys exactly what the paper's model says it destroys: the
//! process's volatile local state (here, the worker's program-state
//! variable, rebuilt from `Program::initial_state`), while the shared heap
//! persists. Crash points are chosen by a per-process seeded RNG before
//! each step, with a per-process crash cap so runs terminate (recoverable
//! wait-freedom only promises progress to processes that eventually stop
//! crashing).
//!
//! The runner checks agreement and validity on the decisions it collects —
//! a cheap dynamic complement to the exhaustive `rcn-valency` checker,
//! useful at thread counts and interleavings the explicit-state checker
//! cannot reach.

use crate::nvheap::NvHeap;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rcn_model::{Action, Event, ProcessId, Schedule, System};
use rcn_obs::Tracer;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration for a threaded run.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// RNG seed (crash points and micro-delays derive from it).
    pub seed: u64,
    /// Probability of crashing before any given step.
    pub crash_prob: f64,
    /// Maximum crashes per process (so the run terminates).
    pub max_crashes: usize,
    /// Safety valve: maximum steps per process (0 disables the check).
    pub max_steps: usize,
    /// Inject random sub-microsecond spin delays to shake interleavings.
    pub jitter: bool,
    /// Record a global linearized event trace (serializes all object
    /// accesses through one lock — for cross-validation, not throughput).
    pub record_trace: bool,
    /// Wall-clock watchdog: abort the run (reporting
    /// [`RunReport::timed_out`]) if it is still going after this long.
    /// Guards against non-wait-free programs spinning forever when
    /// `max_steps` is 0; `None` disables the watchdog entirely.
    pub watchdog: Option<Duration>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            seed: 0,
            crash_prob: 0.05,
            max_crashes: 5,
            max_steps: 100_000,
            jitter: true,
            record_trace: false,
            watchdog: Some(Duration::from_secs(30)),
        }
    }
}

/// Per-process statistics of a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcessStats {
    /// Steps (operation applications) taken, across all incarnations.
    pub steps: usize,
    /// Crashes suffered.
    pub crashes: usize,
    /// The decision, if the process decided.
    pub decision: Option<u32>,
}

/// The result of a threaded run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Per-process statistics.
    pub processes: Vec<ProcessStats>,
    /// Whether all processes decided.
    pub all_decided: bool,
    /// Agreement check: at most one distinct decision.
    pub agreement: bool,
    /// Validity check: every decision is some process's input.
    pub validity: bool,
    /// The linearized global trace, when requested via
    /// [`RunOptions::record_trace`]. Replaying it through the abstract
    /// executor reproduces the run exactly (see the cross-validation
    /// tests).
    pub trace: Option<Schedule>,
    /// `true` if the [`RunOptions::watchdog`] deadline fired and at least
    /// one worker aborted before deciding.
    pub timed_out: bool,
}

impl RunReport {
    /// Returns `true` if the run decided unanimously on a valid value.
    pub fn is_clean_consensus(&self) -> bool {
        self.all_decided && self.agreement && self.validity
    }

    /// Total steps across processes.
    pub fn total_steps(&self) -> usize {
        self.processes.iter().map(|p| p.steps).sum()
    }

    /// Total crashes across processes.
    pub fn total_crashes(&self) -> usize {
        self.processes.iter().map(|p| p.crashes).sum()
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "decided={} agreement={} validity={} steps={} crashes={}",
            self.all_decided,
            self.agreement,
            self.validity,
            self.total_steps(),
            self.total_crashes()
        )?;
        if self.timed_out {
            write!(f, " (timed out)")?;
        }
        Ok(())
    }
}

/// Runs the system's program on one OS thread per process over a fresh
/// [`NvHeap`], injecting crashes per `options`.
///
/// # Examples
///
/// ```
/// use rcn_protocols::TnnRecoverable;
/// use rcn_runtime::{run_threaded, RunOptions};
///
/// let sys = TnnRecoverable::system(5, 2, vec![1, 0]);
/// let report = run_threaded(&sys, RunOptions { seed: 7, ..Default::default() });
/// assert!(report.is_clean_consensus());
/// ```
pub fn run_threaded(system: &System, options: RunOptions) -> RunReport {
    run_threaded_traced(system, options, &Tracer::disabled())
}

/// [`run_threaded`] with observability: brackets the run in a
/// `runtime.run` span, emits a `runtime.watchdog` event from any worker
/// the deadline aborts, and adds the run's totals to the `runtime.steps`
/// and `runtime.crashes` counters. With a disabled tracer this is exactly
/// [`run_threaded`].
pub fn run_threaded_traced(system: &System, options: RunOptions, tracer: &Tracer) -> RunReport {
    let run_span = tracer.span_with(
        "runtime.run",
        i64::try_from(system.n()).unwrap_or(i64::MAX),
        &format!("seed={}", options.seed),
    );
    let heap = Arc::new(NvHeap::new(system.layout_arc()));
    let stats: Vec<Mutex<ProcessStats>> = (0..system.n())
        .map(|_| Mutex::new(ProcessStats::default()))
        .collect();
    let trace: Option<Mutex<Vec<Event>>> = options.record_trace.then(|| Mutex::new(Vec::new()));
    let deadline = options.watchdog.map(|limit| Instant::now() + limit);
    let timed_out = AtomicBool::new(false);

    crossbeam::scope(|scope| {
        for i in 0..system.n() {
            let heap = Arc::clone(&heap);
            let stats = &stats;
            let system = &system;
            let trace = trace.as_ref();
            let timed_out = &timed_out;
            scope.spawn(move |_| {
                run_worker(
                    system,
                    &heap,
                    ProcessId(i as u16),
                    options,
                    &stats[i],
                    trace,
                    deadline,
                    timed_out,
                    tracer,
                );
            });
        }
    })
    .expect("worker threads join");

    let processes: Vec<ProcessStats> = stats.into_iter().map(|m| m.into_inner()).collect();
    let total_steps: usize = processes.iter().map(|p| p.steps).sum();
    let total_crashes: usize = processes.iter().map(|p| p.crashes).sum();
    tracer.add("runtime.steps", total_steps as u64);
    tracer.add("runtime.crashes", total_crashes as u64);
    drop(run_span);
    let decisions: Vec<u32> = processes.iter().filter_map(|p| p.decision).collect();
    let mut distinct = decisions.clone();
    distinct.sort_unstable();
    distinct.dedup();
    RunReport {
        all_decided: processes.iter().all(|p| p.decision.is_some()),
        agreement: distinct.len() <= 1,
        validity: decisions.iter().all(|d| system.inputs().contains(d)),
        processes,
        trace: trace.map(|t| Schedule::from_events(t.into_inner())),
        timed_out: timed_out.load(Ordering::Relaxed),
    }
}

#[allow(clippy::too_many_arguments)]
fn run_worker(
    system: &System,
    heap: &NvHeap,
    pid: ProcessId,
    options: RunOptions,
    stats: &Mutex<ProcessStats>,
    trace: Option<&Mutex<Vec<Event>>>,
    deadline: Option<Instant>,
    timed_out: &AtomicBool,
    tracer: &Tracer,
) {
    let program = system.program();
    let input = system.inputs()[pid.index()];
    let mut rng = StdRng::seed_from_u64(options.seed ^ (0x9e37_79b9 * (pid.index() as u64 + 1)));
    let mut state = program.initial_state(pid, input);
    let mut crashes = 0usize;
    let mut steps = 0usize;
    loop {
        if options.max_steps > 0 && steps > options.max_steps {
            // Liveness bug guard: give up rather than hang the test suite.
            break;
        }
        // Wall-clock watchdog: `max_steps: 0` disables the step guard, so a
        // non-wait-free program would otherwise spin here forever.
        if let Some(deadline) = deadline {
            if steps.is_multiple_of(64) && Instant::now() >= deadline {
                timed_out.store(true, Ordering::Relaxed);
                tracer.event(
                    "runtime.watchdog",
                    i64::try_from(steps).unwrap_or(i64::MAX),
                    &pid.to_string(),
                );
                break;
            }
        }
        // Crash injection: lose the volatile state, keep the heap.
        if crashes < options.max_crashes && rng.gen_bool(options.crash_prob) {
            crashes += 1;
            state = program.initial_state(pid, input);
            if let Some(trace) = trace {
                trace.lock().push(Event::Crash(pid));
            }
            continue;
        }
        match program.action(pid, &state) {
            Action::Output(v) => {
                let mut s = stats.lock();
                s.steps = steps;
                s.crashes = crashes;
                s.decision = Some(v);
                return;
            }
            Action::Invoke { object, op } => {
                if options.jitter && rng.gen_bool(0.2) {
                    std::thread::yield_now();
                }
                let out = match trace {
                    // Tracing serializes the access with its log entry so
                    // the recorded order is a true linearization.
                    Some(trace) => {
                        let mut log = trace.lock();
                        let out = heap.apply(object, op);
                        log.push(Event::Step(pid));
                        out
                    }
                    None => heap.apply(object, op),
                };
                state = program.transition(pid, &state, out.response);
                steps += 1;
            }
        }
    }
    let mut s = stats.lock();
    s.steps = steps;
    s.crashes = crashes;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcn_protocols::{TnnRecoverable, TournamentConsensus};
    use rcn_spec::zoo::StickyBit;

    #[test]
    fn tnn_recoverable_runs_clean_across_seeds() {
        let sys = TnnRecoverable::system(5, 2, vec![1, 0]);
        for seed in 0..10 {
            let report = run_threaded(
                &sys,
                RunOptions {
                    seed,
                    crash_prob: 0.2,
                    max_crashes: 4,
                    ..Default::default()
                },
            );
            assert!(report.is_clean_consensus(), "seed {seed}: {report}");
        }
    }

    #[test]
    fn tournament_runs_clean_with_many_threads() {
        let inputs: Vec<u32> = (0..6).map(|i| i % 2).collect();
        let sys = TournamentConsensus::try_new(Arc::new(StickyBit::new()), inputs).unwrap();
        for seed in 0..5 {
            let report = run_threaded(
                &sys,
                RunOptions {
                    seed,
                    crash_prob: 0.1,
                    max_crashes: 3,
                    ..Default::default()
                },
            );
            assert!(report.is_clean_consensus(), "seed {seed}: {report}");
        }
    }

    /// A deliberately non-wait-free program: read a register forever,
    /// never output. With `max_steps: 0` the step guard is disabled, so
    /// only the watchdog can end the run.
    struct Spinner;

    impl rcn_model::Program for Spinner {
        fn name(&self) -> String {
            "spinner".into()
        }

        fn initial_state(&self, _pid: ProcessId, input: u32) -> rcn_model::LocalState {
            rcn_model::LocalState::word1(input)
        }

        fn action(&self, _pid: ProcessId, _state: &rcn_model::LocalState) -> Action {
            Action::Invoke {
                object: rcn_model::ObjectId(0),
                op: rcn_spec::OpId(0),
            }
        }

        fn transition(
            &self,
            _pid: ProcessId,
            state: &rcn_model::LocalState,
            _response: rcn_spec::Response,
        ) -> rcn_model::LocalState {
            state.clone()
        }
    }

    fn spinner_system() -> System {
        let mut layout = rcn_model::HeapLayout::new();
        layout.add_object(
            "r",
            Arc::new(rcn_spec::zoo::Register::new(2)),
            rcn_spec::ValueId(0),
        );
        System::new_unchecked(Arc::new(Spinner), Arc::new(layout), vec![0, 1])
    }

    #[test]
    fn watchdog_ends_a_non_wait_free_run_instead_of_hanging() {
        // Regression: max_steps: 0 disables the step guard, and before the
        // watchdog existed this configuration spun forever.
        let report = run_threaded(
            &spinner_system(),
            RunOptions {
                max_steps: 0,
                crash_prob: 0.0,
                jitter: false,
                watchdog: Some(Duration::from_millis(100)),
                ..Default::default()
            },
        );
        assert!(report.timed_out, "watchdog must fire: {report}");
        assert!(!report.all_decided);
    }

    #[test]
    fn watchdog_does_not_flag_terminating_runs() {
        let sys = TnnRecoverable::system(5, 2, vec![1, 0]);
        let report = run_threaded(&sys, RunOptions::default());
        assert!(report.is_clean_consensus(), "{report}");
        assert!(!report.timed_out);
    }

    #[test]
    fn traced_run_emits_watchdog_event_and_counters() {
        let tracer = Tracer::ring(64);
        let report = run_threaded_traced(
            &spinner_system(),
            RunOptions {
                max_steps: 0,
                crash_prob: 0.0,
                jitter: false,
                watchdog: Some(Duration::from_millis(100)),
                ..Default::default()
            },
            &tracer,
        );
        assert!(report.timed_out, "{report}");
        let rows = tracer.ring_events();
        assert!(
            rows.iter().any(|r| r.name == "runtime.watchdog"),
            "{rows:?}"
        );
        assert!(rows.iter().any(|r| r.name == "runtime.run"));
        let snap = tracer.snapshot().expect("enabled tracer");
        assert_eq!(
            snap.counter("runtime.steps"),
            Some(report.total_steps() as u64)
        );
    }

    #[test]
    fn stats_account_steps_and_crashes() {
        let sys = TnnRecoverable::system(4, 2, vec![0, 1]);
        let report = run_threaded(
            &sys,
            RunOptions {
                seed: 3,
                crash_prob: 0.3,
                max_crashes: 5,
                ..Default::default()
            },
        );
        assert!(report.total_steps() >= 2, "{report}");
        assert!(report.processes.len() == 2);
    }
}
