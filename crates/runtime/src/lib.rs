//! # rcn-runtime — threaded execution over simulated non-volatile memory
//!
//! Runs protocol [`Program`](rcn_model::Program)s on real OS threads:
//!
//! * [`NvHeap`] — a lock-per-object shared heap playing the role of
//!   non-volatile main memory (it survives simulated process crashes);
//! * [`run_threaded`] — one thread per process, per-process seeded crash
//!   injection (a crash discards the worker's volatile state, exactly the
//!   paper's crash semantics), plus dynamic agreement/validity checking and
//!   a wall-clock watchdog so non-wait-free programs cannot hang a run;
//! * [`run_schedule`] — deterministic replay of an explicit
//!   [`Schedule`](rcn_model::Schedule) on real threads, used by the
//!   `rcn-faults` crash explorer to confirm counterexamples end-to-end.
//!
//! This complements the exhaustive `rcn-valency` checker: the checker is
//! exact but explicit-state; the runtime exercises true parallelism, large
//! process counts, and timing-dependent interleavings.
//!
//! Both entry points have `_traced` variants ([`run_threaded_traced`],
//! [`run_schedule_traced`]) that accept an [`rcn_obs::Tracer`] and emit
//! `runtime.step` / `runtime.crash` / `runtime.watchdog` events plus
//! `runtime.*` counters; the untraced forms delegate with a disabled
//! tracer and cost nothing extra.
//!
//! ## Quickstart
//!
//! ```
//! use rcn_protocols::TnnRecoverable;
//! use rcn_runtime::{run_threaded, RunOptions};
//!
//! let sys = TnnRecoverable::system(5, 2, vec![1, 0]);
//! let report = run_threaded(&sys, RunOptions { seed: 1, ..Default::default() });
//! assert!(report.is_clean_consensus());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod nvheap;
mod runner;
mod scheduled;

pub use nvheap::NvHeap;
pub use runner::{run_threaded, run_threaded_traced, ProcessStats, RunOptions, RunReport};
pub use scheduled::{run_schedule, run_schedule_traced, ScheduleReport};
