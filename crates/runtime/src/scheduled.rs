//! Deterministic, schedule-driven threaded replay.
//!
//! [`run_threaded`](crate::run_threaded) explores interleavings the OS
//! scheduler and a seeded RNG happen to produce; this module is the
//! opposite tool: it takes an explicit [`Schedule`] — e.g. a counterexample
//! found by the crash explorer in `rcn-faults` — and executes it on real OS
//! threads over a real [`NvHeap`](crate::NvHeap), one thread per process,
//! with a turn-based coordinator that hands the global next-event token to
//! exactly the thread the schedule names. Crashes destroy the worker's
//! volatile program state (the paper's crash semantics) while the heap
//! persists.
//!
//! The point is end-to-end confirmation: a violation predicted by the
//! abstract executor ([`System::run_from_start`]) is only believed once the
//! very same schedule produces the very same outputs through the threaded
//! machinery. The replay mirrors the abstract executor's output semantics
//! exactly — an output is recorded when a step *enters* an output state, a
//! step taken in an output state is a no-op, and a crash of a process whose
//! initial state is an output state re-outputs on recovery.

use crate::nvheap::NvHeap;
use rcn_model::{Action, Event, ProcessId, Schedule, System, Violation};
use rcn_obs::Tracer;
use std::sync::{Condvar, Mutex};

/// The result of replaying a fixed schedule on real threads.
#[derive(Debug, Clone)]
pub struct ScheduleReport {
    /// The events actually executed, in order. Always equals the input
    /// schedule — recorded independently by the workers as an end-to-end
    /// fidelity check, not assumed.
    pub trace: Schedule,
    /// Every output in execution order (a crashed process that re-outputs
    /// appears more than once). Initial-state outputs are not listed here,
    /// matching [`rcn_model::Execution::outputs`].
    pub outputs: Vec<(ProcessId, u32)>,
    /// The first value each process output (including initial-state
    /// outputs).
    pub decisions: Vec<Option<u32>>,
    /// The first agreement/validity violation among the replayed events,
    /// if any.
    pub violation: Option<Violation>,
}

/// What the worker threads share, guarded by one mutex: the turn cursor
/// plus everything the report is assembled from.
struct Shared {
    cursor: usize,
    /// During a [`Event::SystemCrash`], the index of the process whose turn
    /// it is to reset (every worker participates, in process-id order, so
    /// re-outputs are recorded in the same order as the abstract
    /// executor's). `0` outside a system crash.
    sys_next: usize,
    trace: Vec<Event>,
    outputs: Vec<(ProcessId, u32)>,
    decided: Vec<Option<u32>>,
    violation: Option<Violation>,
}

impl Shared {
    /// Mirrors the abstract executor's output bookkeeping: check the new
    /// output against everything decided so far *before* recording it.
    fn record_output(&mut self, system: &System, pid: ProcessId, v: u32) {
        self.outputs.push((pid, v));
        if self.violation.is_none() {
            self.violation = check_output(system, &self.decided, pid, v);
        }
        if self.decided[pid.index()].is_none() {
            self.decided[pid.index()] = Some(v);
        }
    }
}

/// The same agreement/validity check `System::apply` performs (kept in sync
/// with `rcn_model::system::System::check_output`).
fn check_output(
    system: &System,
    decided: &[Option<u32>],
    p: ProcessId,
    v: u32,
) -> Option<Violation> {
    if !system.is_consensus_checked() {
        return None;
    }
    if !system.inputs().contains(&v) {
        return Some(Violation::Validity {
            process: p,
            output: v,
        });
    }
    decided
        .iter()
        .flatten()
        .find(|&&earlier| earlier != v)
        .map(|&earlier| Violation::Agreement {
            process: p,
            output: v,
            earlier,
        })
}

/// Replays `schedule` on one OS thread per process over a fresh
/// [`NvHeap`], in exactly the scheduled order.
///
/// # Panics
///
/// Panics if the schedule names a process id `>= system.n()`.
///
/// # Examples
///
/// ```
/// use rcn_protocols::TasConsensus;
/// use rcn_runtime::run_schedule;
///
/// let sys = TasConsensus::system(vec![0, 1]);
/// // Solo run of p0: announce, win the TAS, decide own input.
/// let report = run_schedule(&sys, &"p0 p0".parse().unwrap());
/// assert_eq!(report.decisions[0], Some(0));
/// assert!(report.violation.is_none());
/// ```
pub fn run_schedule(system: &System, schedule: &Schedule) -> ScheduleReport {
    run_schedule_traced(system, schedule, &Tracer::disabled())
}

/// [`run_schedule`] with observability: brackets the replay in a
/// `runtime.replay` span, emits a `runtime.step` / `runtime.crash` event
/// per scheduled event (from the worker thread that executed it, so the
/// trace records real thread ids), and maintains the `runtime.steps`,
/// `runtime.crashes`, and `runtime.outputs` counters. With a disabled
/// tracer this is exactly [`run_schedule`].
///
/// # Panics
///
/// Panics if the schedule names a process id `>= system.n()`.
pub fn run_schedule_traced(
    system: &System,
    schedule: &Schedule,
    tracer: &Tracer,
) -> ScheduleReport {
    let n = system.n();
    for event in schedule.iter() {
        if let Some(p) = event.process() {
            assert!(
                p.index() < n,
                "schedule names {p} but the system has {n} processes"
            );
        }
    }
    let heap = NvHeap::new(system.layout_arc());
    let events: Vec<Event> = schedule.events().to_vec();

    // Seed the decision table with initial-state outputs, like
    // `System::initial_config` does, so re-output checks see them.
    let initial = system.initial_config();
    let shared = Mutex::new(Shared {
        cursor: 0,
        sys_next: 0,
        trace: Vec::with_capacity(events.len()),
        outputs: Vec::new(),
        decided: initial.decided.clone(),
        violation: None,
    });
    let turn = Condvar::new();

    let replay_span = tracer.span_with(
        "runtime.replay",
        i64::try_from(events.len()).unwrap_or(i64::MAX),
        &format!("n={n}"),
    );
    let steps = tracer.counter("runtime.steps");
    let crashes = tracer.counter("runtime.crashes");

    std::thread::scope(|scope| {
        for i in 0..n {
            let pid = ProcessId(i as u16);
            let heap = &heap;
            let events = &events;
            let shared = &shared;
            let turn = &turn;
            let steps = &steps;
            let crashes = &crashes;
            scope.spawn(move || {
                let program = system.program();
                let input = system.inputs()[pid.index()];
                let mut state = program.initial_state(pid, input);
                let mut guard = shared.lock().expect("replay shared state");
                loop {
                    // A worker's turn: the cursor event belongs to it, or
                    // it is a system-wide crash and the reset token
                    // (process-id order) has reached this worker.
                    let my_turn = |guard: &Shared| match events[guard.cursor].process() {
                        Some(p) => p == pid,
                        None => guard.sys_next == pid.index(),
                    };
                    while guard.cursor < events.len() && !my_turn(&guard) {
                        guard = turn.wait(guard).expect("replay shared state");
                    }
                    if guard.cursor >= events.len() {
                        return;
                    }
                    let event = events[guard.cursor];
                    match event {
                        Event::Crash(_) => {
                            crashes.incr();
                            if tracer.recording() {
                                tracer.event(
                                    "runtime.crash",
                                    guard.cursor as i64,
                                    &pid.to_string(),
                                );
                            }
                            // Volatile state dies; the heap persists. A
                            // recovery into an output state re-outputs.
                            state = program.initial_state(pid, input);
                            if let Action::Output(v) = program.action(pid, &state) {
                                guard.record_output(system, pid, v);
                            }
                        }
                        Event::SystemCrash => {
                            // Every worker resets its own volatile state;
                            // the heap persists. Workers take the token in
                            // process-id order, so re-outputs land in the
                            // same order as the abstract executor's, and
                            // only the last participant advances the
                            // cursor.
                            crashes.incr();
                            if tracer.recording() {
                                tracer.event(
                                    "runtime.crash",
                                    guard.cursor as i64,
                                    &pid.to_string(),
                                );
                            }
                            state = program.initial_state(pid, input);
                            if let Action::Output(v) = program.action(pid, &state) {
                                guard.record_output(system, pid, v);
                            }
                            if pid.index() + 1 < n {
                                guard.sys_next = pid.index() + 1;
                                turn.notify_all();
                                continue;
                            }
                            guard.sys_next = 0;
                        }
                        Event::CrashDuring(_) => {
                            // Mid-operation crash, linearized resolution:
                            // the pending invocation hits the heap, but the
                            // response dies with the worker's volatile
                            // state.
                            crashes.incr();
                            if tracer.recording() {
                                tracer.event(
                                    "runtime.crash",
                                    guard.cursor as i64,
                                    &pid.to_string(),
                                );
                            }
                            if let Action::Invoke { object, op } = program.action(pid, &state) {
                                heap.apply(object, op);
                            }
                            state = program.initial_state(pid, input);
                            if let Action::Output(v) = program.action(pid, &state) {
                                guard.record_output(system, pid, v);
                            }
                        }
                        Event::Step(_) => {
                            steps.incr();
                            if tracer.recording() {
                                tracer.event("runtime.step", guard.cursor as i64, &pid.to_string());
                            }
                            match program.action(pid, &state) {
                                Action::Output(_) => {
                                    // A step in an output state is a no-op.
                                }
                                Action::Invoke { object, op } => {
                                    let out = heap.apply(object, op);
                                    state = program.transition(pid, &state, out.response);
                                    if let Action::Output(v) = program.action(pid, &state) {
                                        guard.record_output(system, pid, v);
                                    }
                                }
                            }
                        }
                    }
                    guard.trace.push(event);
                    guard.cursor += 1;
                    turn.notify_all();
                }
            });
        }
    });

    let shared = shared.into_inner().expect("replay shared state");
    tracer.add(
        "runtime.outputs",
        u64::try_from(shared.outputs.len()).unwrap_or(0),
    );
    drop(replay_span);
    ScheduleReport {
        trace: Schedule::from_events(shared.trace),
        outputs: shared.outputs,
        decisions: shared.decided,
        violation: shared.violation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcn_model::Execution;
    use rcn_obs::{KIND_CLOSE, KIND_OPEN};
    use rcn_protocols::{TasConsensus, TnnRecoverable, TnnWaitFree};

    #[test]
    fn golabs_schedule_reproduces_the_violation_on_threads() {
        let sys = TasConsensus::system(vec![0, 1]);
        let schedule: Schedule = "p0 p0 c0 p1 p1 p0 p0 p0 p1 p1".parse().unwrap();
        let report = run_schedule(&sys, &schedule);
        assert_eq!(report.trace, schedule, "replay must follow the schedule");
        let (_, expected) = sys.run_from_start(&schedule);
        assert_eq!(report.violation, expected);
        assert!(report.violation.is_some(), "Golab's schedule must violate");
    }

    #[test]
    fn threaded_replay_matches_the_abstract_executor() {
        let sys = TnnRecoverable::system(5, 2, vec![1, 0]);
        let schedule: Schedule = "p0 c0 p0 p1 p0 p1 c1 p1 p1".parse().unwrap();
        let report = run_schedule(&sys, &schedule);
        let exec = Execution::record(&sys, &schedule);
        assert_eq!(report.trace, schedule);
        assert_eq!(report.outputs, exec.outputs());
        assert_eq!(report.violation, exec.first_violation());
        assert_eq!(
            report.decisions,
            exec.final_config().decided,
            "decisions must match the abstract final configuration"
        );
    }

    #[test]
    #[should_panic(expected = "processes")]
    fn out_of_range_process_ids_are_rejected() {
        let sys = TasConsensus::system(vec![0, 1]);
        run_schedule(&sys, &"p7".parse().unwrap());
    }

    #[test]
    fn system_crash_replays_like_the_abstract_executor() {
        // Golab's T&S counterexample with the lone crash widened to a
        // system-wide one: every worker resets, and the replay stays
        // bit-identical to the abstract run.
        let sys = TasConsensus::system(vec![0, 1]);
        let schedule: Schedule = "p0 p0 C p1 p1 p0 p0 p0 p1 p1".parse().unwrap();
        let report = run_schedule(&sys, &schedule);
        let exec = Execution::record(&sys, &schedule);
        assert_eq!(report.trace, schedule, "replay must follow the schedule");
        assert_eq!(report.outputs, exec.outputs());
        assert_eq!(report.violation, exec.first_violation());
        assert_eq!(report.decisions, exec.final_config().decided);
    }

    #[test]
    fn mid_operation_crash_replays_like_the_abstract_executor() {
        // The depth-3 ⊥-divergence of wait-free T_{2,1}: p0's pending
        // operation linearizes (the object saturates) but its response is
        // lost to the crash, so p0 retries after recovery.
        let sys = TnnWaitFree::system(2, 1, vec![0, 1]);
        let schedule: Schedule = "p1 d0 p0".parse().unwrap();
        let report = run_schedule(&sys, &schedule);
        let exec = Execution::record(&sys, &schedule);
        assert_eq!(report.trace, schedule);
        assert_eq!(report.outputs, exec.outputs());
        assert_eq!(report.violation, exec.first_violation());
        assert!(report.violation.is_some(), "p1 d0 p0 must diverge");
        assert_eq!(report.decisions, exec.final_config().decided);
    }

    #[test]
    fn mixed_fault_schedules_replay_bit_identically() {
        // All four event families in one schedule, across both a broken
        // and a certified protocol.
        for (sys, text) in [
            (TasConsensus::system(vec![0, 1]), "p0 d1 C p0 p1 c0 p0 p0"),
            (
                TnnRecoverable::system(5, 2, vec![1, 0]),
                "p0 c0 d0 p1 C p0 p1 d1 p1 p1",
            ),
        ] {
            let schedule: Schedule = text.parse().unwrap();
            let report = run_schedule(&sys, &schedule);
            let exec = Execution::record(&sys, &schedule);
            assert_eq!(report.trace, schedule, "{text}");
            assert_eq!(report.outputs, exec.outputs(), "{text}");
            assert_eq!(report.violation, exec.first_violation(), "{text}");
            assert_eq!(report.decisions, exec.final_config().decided, "{text}");
        }
    }

    #[test]
    fn traced_system_crash_counts_every_worker_reset() {
        let sys = TasConsensus::system(vec![0, 1]);
        let schedule: Schedule = "p0 C p1".parse().unwrap();
        let tracer = Tracer::ring(256);
        run_schedule_traced(&sys, &schedule, &tracer);
        let snap = tracer.snapshot().expect("enabled tracer");
        // A system-wide crash resets both workers: two crash increments.
        assert_eq!(snap.counter("runtime.crashes"), Some(2));
        assert_eq!(snap.counter("runtime.steps"), Some(2));
    }

    #[test]
    fn traced_replay_records_events_and_counters() {
        let sys = TasConsensus::system(vec![0, 1]);
        let schedule: Schedule = "p0 p0 c0 p1 p1 p0 p0 p0 p1 p1".parse().unwrap();
        let tracer = Tracer::ring(256);
        let traced = run_schedule_traced(&sys, &schedule, &tracer);
        let plain = run_schedule(&sys, &schedule);
        // Tracing must be transparent: identical report either way.
        assert_eq!(traced.trace, plain.trace);
        assert_eq!(traced.outputs, plain.outputs);
        assert_eq!(traced.decisions, plain.decisions);
        assert_eq!(traced.violation, plain.violation);

        let rows = tracer.ring_events();
        let steps = rows.iter().filter(|r| r.name == "runtime.step").count();
        let crashes = rows.iter().filter(|r| r.name == "runtime.crash").count();
        assert_eq!(steps, 9, "{rows:?}");
        assert_eq!(crashes, 1, "{rows:?}");
        let opens = rows
            .iter()
            .filter(|r| r.kind == KIND_OPEN && r.name == "runtime.replay")
            .count();
        let closes = rows
            .iter()
            .filter(|r| r.kind == KIND_CLOSE && r.name == "runtime.replay")
            .count();
        assert_eq!((opens, closes), (1, 1));

        let snap = tracer.snapshot().expect("enabled tracer");
        assert_eq!(snap.counter("runtime.steps"), Some(9));
        assert_eq!(snap.counter("runtime.crashes"), Some(1));
        assert_eq!(
            snap.counter("runtime.outputs"),
            Some(traced.outputs.len() as u64)
        );
    }
}
