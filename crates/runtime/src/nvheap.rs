//! Simulated non-volatile memory: a shared object heap that survives
//! process crashes.
//!
//! The paper's model (§2, following the non-volatile main-memory
//! literature): when a process crashes, *"its local variables (including its
//! program counter) are all reset to their initial values. However, all
//! shared objects retain their values."* Real systems get this from NVM
//! hardware; here the role of NVM is played by a heap shared between worker
//! threads — a thread "crash" destroys the thread's stack state while the
//! heap lives on. This substitution preserves exactly the semantics the
//! paper studies (see DESIGN.md §2).
//!
//! Each object is guarded by its own lock, making every operation of the
//! sequential specification atomic — the linearized object semantics that
//! the abstract model assumes per step.

use parking_lot::Mutex;
use rcn_model::{HeapLayout, ObjectId};
use rcn_spec::{OpId, Outcome, ValueId};
use std::sync::Arc;

/// A thread-safe, crash-surviving object heap.
///
/// # Examples
///
/// ```
/// use rcn_model::HeapLayout;
/// use rcn_runtime::NvHeap;
/// use rcn_spec::{zoo::TestAndSet, OpId, ValueId};
/// use std::sync::Arc;
///
/// let mut layout = HeapLayout::new();
/// let tas = layout.add_object("T", Arc::new(TestAndSet::new()), ValueId::new(0));
/// let heap = NvHeap::new(Arc::new(layout));
/// let first = heap.apply(tas, OpId::new(0));
/// assert_eq!(first.response.index(), 0);
/// let second = heap.apply(tas, OpId::new(0));
/// assert_eq!(second.response.index(), 1);
/// ```
pub struct NvHeap {
    layout: Arc<HeapLayout>,
    cells: Vec<Mutex<ValueId>>,
}

impl NvHeap {
    /// Creates the heap with every object at its initial value.
    pub fn new(layout: Arc<HeapLayout>) -> Self {
        let cells = layout
            .initial_values()
            .into_iter()
            .map(Mutex::new)
            .collect();
        NvHeap { layout, cells }
    }

    /// The layout this heap was built from.
    pub fn layout(&self) -> &HeapLayout {
        &self.layout
    }

    /// Atomically applies `op` to object `id`, returning the outcome.
    ///
    /// # Panics
    ///
    /// Panics if `id` or `op` is out of range for the layout.
    pub fn apply(&self, id: ObjectId, op: OpId) -> Outcome {
        let ty = self.layout.object_type(id);
        let mut cell = self.cells[id.index()].lock();
        let out = ty.apply(*cell, op);
        *cell = out.next;
        out
    }

    /// Reads the current value of an object (for assertions and reports; the
    /// abstract model has no such global observer).
    pub fn peek(&self, id: ObjectId) -> ValueId {
        *self.cells[id.index()].lock()
    }

    /// Snapshot of all object values.
    pub fn snapshot(&self) -> Vec<ValueId> {
        self.cells.iter().map(|c| *c.lock()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcn_spec::zoo::{Register, TestAndSet};

    fn heap() -> (NvHeap, ObjectId, ObjectId) {
        let mut layout = HeapLayout::new();
        let tas = layout.add_object("T", Arc::new(TestAndSet::new()), ValueId::new(0));
        let reg = layout.add_object("R", Arc::new(Register::new(4)), ValueId::new(0));
        (NvHeap::new(Arc::new(layout)), tas, reg)
    }

    #[test]
    fn values_start_at_initials() {
        let (heap, tas, reg) = heap();
        assert_eq!(heap.peek(tas), ValueId::new(0));
        assert_eq!(heap.peek(reg), ValueId::new(0));
    }

    #[test]
    fn apply_mutates_persistently() {
        let (heap, tas, reg) = heap();
        heap.apply(tas, OpId::new(0));
        heap.apply(reg, OpId::new(3)); // write(3)
        assert_eq!(heap.snapshot(), vec![ValueId::new(1), ValueId::new(3)]);
    }

    #[test]
    fn concurrent_test_and_set_has_one_winner() {
        let (heap, tas, _) = heap();
        let heap = Arc::new(heap);
        let winners = std::sync::atomic::AtomicUsize::new(0);
        crossbeam::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    if heap.apply(tas, OpId::new(0)).response.index() == 0 {
                        winners.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    }
                });
            }
        })
        .expect("threads join");
        assert_eq!(winners.load(std::sync::atomic::Ordering::SeqCst), 1);
    }
}
