//! Small index newtypes shared by every crate in the workspace.
//!
//! A deterministic type (paper, §2) has finite sets of values, operations and
//! responses. We index all three by dense small integers so that deciders and
//! model checkers can use them directly as array indices and bitset members.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a value in an [`ObjectType`](crate::ObjectType)'s value set.
///
/// Values are dense: a type with `k` values uses ids `0..k`.
///
/// # Examples
///
/// ```
/// use rcn_spec::ValueId;
/// let v = ValueId::new(3);
/// assert_eq!(v.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ValueId(pub u16);

impl ValueId {
    /// Creates a value id from a dense index.
    #[inline]
    pub const fn new(index: u16) -> Self {
        ValueId(index)
    }

    /// Returns the dense index as a `usize`, suitable for array indexing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u16> for ValueId {
    fn from(index: u16) -> Self {
        ValueId(index)
    }
}

/// Index of an operation in an [`ObjectType`](crate::ObjectType)'s operation set.
///
/// # Examples
///
/// ```
/// use rcn_spec::OpId;
/// let op = OpId::new(0);
/// assert_eq!(op.index(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OpId(pub u16);

impl OpId {
    /// Creates an operation id from a dense index.
    #[inline]
    pub const fn new(index: u16) -> Self {
        OpId(index)
    }

    /// Returns the dense index as a `usize`, suitable for array indexing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

impl From<u16> for OpId {
    fn from(index: u16) -> Self {
        OpId(index)
    }
}

/// Index of a response in an [`ObjectType`](crate::ObjectType)'s response set.
///
/// Responses are what operations return; two operations may share response
/// ids (e.g. both `op_0` and `op_1` of the paper's `T_{n,n'}` can return `⊥`).
///
/// # Examples
///
/// ```
/// use rcn_spec::Response;
/// let r = Response::new(1);
/// assert_eq!(r.index(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Response(pub u16);

impl Response {
    /// Creates a response id from a dense index.
    #[inline]
    pub const fn new(index: u16) -> Self {
        Response(index)
    }

    /// Returns the dense index as a `usize`, suitable for array indexing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<u16> for Response {
    fn from(index: u16) -> Self {
        Response(index)
    }
}

/// The result of applying one operation to one value: the response returned
/// to the caller and the resulting value of the object.
///
/// Because every type in this workspace is deterministic (paper, §2), an
/// `Outcome` is a pure function of `(value, operation)`.
///
/// # Examples
///
/// ```
/// use rcn_spec::{Outcome, Response, ValueId};
/// let out = Outcome::new(Response::new(0), ValueId::new(2));
/// assert_eq!(out.response, Response::new(0));
/// assert_eq!(out.next, ValueId::new(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Outcome {
    /// The response the operation returns.
    pub response: Response,
    /// The value of the object after the operation.
    pub next: ValueId,
}

impl Outcome {
    /// Creates an outcome from a response and a resulting value.
    #[inline]
    pub const fn new(response: Response, next: ValueId) -> Self {
        Outcome { response, next }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} -> {})", self.response, self.next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_id_roundtrip() {
        let v = ValueId::new(7);
        assert_eq!(v.index(), 7);
        assert_eq!(ValueId::from(7u16), v);
        assert_eq!(v.to_string(), "v7");
    }

    #[test]
    fn op_id_roundtrip() {
        let op = OpId::new(2);
        assert_eq!(op.index(), 2);
        assert_eq!(OpId::from(2u16), op);
        assert_eq!(op.to_string(), "op2");
    }

    #[test]
    fn response_roundtrip() {
        let r = Response::new(5);
        assert_eq!(r.index(), 5);
        assert_eq!(Response::from(5u16), r);
        assert_eq!(r.to_string(), "r5");
    }

    #[test]
    fn outcome_display_mentions_both_parts() {
        let out = Outcome::new(Response::new(1), ValueId::new(4));
        let shown = out.to_string();
        assert!(shown.contains("r1"));
        assert!(shown.contains("v4"));
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(ValueId::new(1) < ValueId::new(2));
        assert!(OpId::new(0) < OpId::new(9));
        assert!(Response::new(3) < Response::new(4));
    }
}
