//! The [`ObjectType`] trait: a deterministic sequential specification.
//!
//! Paper, §2: *"Each object has a type, which defines a set of values, a set
//! of operations that can be applied to an object of the type, and a set of
//! responses that these operations can return. Every type has a sequential
//! specification that defines, for each value `v` and each operation `op` of
//! the type, the response to that operation and a resulting value."*
//!
//! All types in this workspace are deterministic: `apply` is a pure function.

use crate::ids::{OpId, Outcome, Response, ValueId};

/// A deterministic, finite sequential object-type specification.
///
/// Implementors must guarantee:
///
/// * `apply(v, op)` is total for all `v < num_values()`, `op < num_ops()`;
/// * `apply` is a pure function (determinism, paper §2);
/// * the returned [`Outcome`] stays in range (`next < num_values()`,
///   `response < num_responses()`).
///
/// The blanket helpers ([`is_read_op`](ObjectType::is_read_op),
/// [`read_op`](ObjectType::read_op), [`is_readable`](ObjectType::is_readable))
/// detect readability per the paper's definition: a type is *readable* if it
/// supports an operation that returns the current value of the object without
/// changing it. "Returns the current value" is formalized as: the operation
/// never changes the value, and its response function is injective on values
/// (distinct values produce distinct responses), so the response identifies
/// the value exactly.
///
/// # Examples
///
/// ```
/// use rcn_spec::{zoo::Register, ObjectType, OpId, ValueId};
/// let reg = Register::new(2);
/// // Register over {0,1}: ops are write(0), write(1), read.
/// let read = reg.read_op().expect("registers are readable");
/// let out = reg.apply(ValueId::new(1), read);
/// assert_eq!(out.next, ValueId::new(1)); // read leaves the value unchanged
/// ```
pub trait ObjectType {
    /// A short human-readable name for the type (e.g. `"test-and-set"`).
    fn name(&self) -> String;

    /// Number of values of the type. Value ids range over `0..num_values()`.
    fn num_values(&self) -> usize;

    /// Number of operations of the type. Op ids range over `0..num_ops()`.
    fn num_ops(&self) -> usize;

    /// Number of distinct responses. Response ids range over
    /// `0..num_responses()`.
    fn num_responses(&self) -> usize;

    /// The sequential specification: applying `op` to an object with value
    /// `value` yields a response and a resulting value.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `value` or `op` is out of range.
    fn apply(&self, value: ValueId, op: OpId) -> Outcome;

    /// Human-readable name of a value (used in DOT output and reports).
    fn value_name(&self, value: ValueId) -> String {
        format!("v{}", value.0)
    }

    /// Human-readable name of an operation.
    fn op_name(&self, op: OpId) -> String {
        format!("op{}", op.0)
    }

    /// Human-readable name of a response.
    fn response_name(&self, response: Response) -> String {
        format!("r{}", response.0)
    }

    /// Returns `true` if `op` is a *read* operation: it never changes the
    /// value, and its responses distinguish every pair of values.
    fn is_read_op(&self, op: OpId) -> bool {
        let n = self.num_values();
        let mut seen = vec![false; self.num_responses()];
        for v in 0..n {
            let out = self.apply(ValueId(v as u16), op);
            if out.next.index() != v {
                return false;
            }
            let r = out.response.index();
            if seen[r] {
                // Two values map to the same response: not injective.
                return false;
            }
            seen[r] = true;
        }
        true
    }

    /// Returns the first read operation of the type, if any.
    fn read_op(&self) -> Option<OpId> {
        (0..self.num_ops())
            .map(|i| OpId(i as u16))
            .find(|&op| self.is_read_op(op))
    }

    /// Returns `true` if the type is readable (supports a read operation).
    fn is_readable(&self) -> bool {
        self.read_op().is_some()
    }

    /// Iterates over all value ids of the type.
    fn values(&self) -> Box<dyn Iterator<Item = ValueId>> {
        let n = self.num_values();
        Box::new((0..n).map(|i| ValueId(i as u16)))
    }

    /// Iterates over all operation ids of the type.
    fn ops(&self) -> Box<dyn Iterator<Item = OpId>> {
        let n = self.num_ops();
        Box::new((0..n).map(|i| OpId(i as u16)))
    }
}

/// Checks the structural well-formedness of a specification: every
/// `(value, op)` pair must produce an in-range [`Outcome`].
///
/// Returns the offending `(value, op)` pair on failure.
///
/// # Examples
///
/// ```
/// use rcn_spec::{zoo::TestAndSet, check_closed};
/// assert!(check_closed(&TestAndSet::new()).is_ok());
/// ```
pub fn check_closed<T: ObjectType + ?Sized>(ty: &T) -> Result<(), (ValueId, OpId)> {
    for v in 0..ty.num_values() {
        for op in 0..ty.num_ops() {
            let value = ValueId(v as u16);
            let op = OpId(op as u16);
            let out = ty.apply(value, op);
            if out.next.index() >= ty.num_values() || out.response.index() >= ty.num_responses() {
                return Err((value, op));
            }
        }
    }
    Ok(())
}

/// Applies a sequence of operations starting from `initial`, returning the
/// per-step outcomes and the final value.
///
/// This is the "schedule application" used throughout the paper's
/// definitions of *n-discerning* and *n-recording*: the processes in a
/// schedule apply their operations in order on an object with a given
/// initial value.
///
/// # Examples
///
/// ```
/// use rcn_spec::{zoo::TestAndSet, apply_all, OpId, ValueId};
/// let tas = TestAndSet::new();
/// let (outs, v) = apply_all(&tas, ValueId::new(0), &[OpId::new(0), OpId::new(0)]);
/// assert_eq!(outs.len(), 2);
/// assert_eq!(v, ValueId::new(1)); // set after the first test-and-set
/// ```
pub fn apply_all<T: ObjectType + ?Sized>(
    ty: &T,
    initial: ValueId,
    ops: &[OpId],
) -> (Vec<Outcome>, ValueId) {
    let mut value = initial;
    let mut outcomes = Vec::with_capacity(ops.len());
    for &op in ops {
        let out = ty.apply(value, op);
        outcomes.push(out);
        value = out.next;
    }
    (outcomes, value)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A two-value type whose only op flips the value and reports the old one.
    struct Flipper;

    impl ObjectType for Flipper {
        fn name(&self) -> String {
            "flipper".into()
        }
        fn num_values(&self) -> usize {
            2
        }
        fn num_ops(&self) -> usize {
            1
        }
        fn num_responses(&self) -> usize {
            2
        }
        fn apply(&self, value: ValueId, _op: OpId) -> Outcome {
            Outcome::new(Response(value.0), ValueId(1 - value.0))
        }
    }

    #[test]
    fn flipper_is_closed_but_not_readable() {
        assert!(check_closed(&Flipper).is_ok());
        assert!(!Flipper.is_readable());
        assert_eq!(Flipper.read_op(), None);
    }

    #[test]
    fn apply_all_tracks_value_evolution() {
        let ops = [OpId(0), OpId(0), OpId(0)];
        let (outs, v) = apply_all(&Flipper, ValueId(0), &ops);
        assert_eq!(outs.len(), 3);
        assert_eq!(v, ValueId(1));
        assert_eq!(outs[0].response, Response(0));
        assert_eq!(outs[1].response, Response(1));
        assert_eq!(outs[2].response, Response(0));
    }

    #[test]
    fn apply_all_empty_sequence_is_identity() {
        let (outs, v) = apply_all(&Flipper, ValueId(1), &[]);
        assert!(outs.is_empty());
        assert_eq!(v, ValueId(1));
    }

    #[test]
    fn values_and_ops_iterators_cover_ranges() {
        let vals: Vec<_> = Flipper.values().collect();
        assert_eq!(vals, vec![ValueId(0), ValueId(1)]);
        let ops: Vec<_> = Flipper.ops().collect();
        assert_eq!(ops, vec![OpId(0)]);
    }

    /// A read op must be injective on responses, not merely non-mutating.
    struct ConstantProbe;

    impl ObjectType for ConstantProbe {
        fn name(&self) -> String {
            "constant-probe".into()
        }
        fn num_values(&self) -> usize {
            2
        }
        fn num_ops(&self) -> usize {
            1
        }
        fn num_responses(&self) -> usize {
            1
        }
        fn apply(&self, value: ValueId, _op: OpId) -> Outcome {
            // Leaves the value alone but always answers 0: not a read.
            Outcome::new(Response(0), value)
        }
    }

    #[test]
    fn non_injective_probe_is_not_a_read() {
        assert!(!ConstantProbe.is_read_op(OpId(0)));
        assert!(!ConstantProbe.is_readable());
    }
}
