//! Graphviz DOT export of type state machines.
//!
//! Regenerates Figure 3 of the paper (the state-machine diagram of
//! `T_{5,2}`): values are nodes, operations are labelled edges. Edges that
//! share source and target are merged into a single multi-labelled edge to
//! keep the render readable, exactly like the figure groups
//! `op_0, op_1` transitions.

use crate::ids::{OpId, ValueId};
use crate::object_type::ObjectType;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Renders a type's state machine in Graphviz DOT format.
///
/// Self-loop edges can be suppressed (the paper's Figure 3 omits the
/// absorbing `s_⊥` self-loops and read self-loops for clarity).
///
/// # Examples
///
/// ```
/// use rcn_spec::{zoo::Tnn, dot::to_dot};
/// let dot = to_dot(&Tnn::new(5, 2), false);
/// assert!(dot.contains("digraph"));
/// assert!(dot.contains("s_(0,1)"));
/// ```
pub fn to_dot<T: ObjectType + ?Sized>(ty: &T, include_self_loops: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", ty.name());
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=ellipse];");
    for v in 0..ty.num_values() {
        let v = ValueId(v as u16);
        let _ = writeln!(out, "  v{} [label=\"{}\"];", v.0, escape(&ty.value_name(v)));
    }
    // Merge parallel edges: (source, target) -> list of "op/response" labels.
    let mut edges: BTreeMap<(u16, u16), Vec<String>> = BTreeMap::new();
    for v in 0..ty.num_values() {
        let value = ValueId(v as u16);
        for op in 0..ty.num_ops() {
            let op = OpId(op as u16);
            let outcome = ty.apply(value, op);
            if outcome.next == value && !include_self_loops {
                continue;
            }
            edges
                .entry((value.0, outcome.next.0))
                .or_default()
                .push(format!(
                    "{}/{}",
                    ty.op_name(op),
                    ty.response_name(outcome.response)
                ));
        }
    }
    for ((src, dst), labels) in edges {
        let _ = writeln!(
            out,
            "  v{src} -> v{dst} [label=\"{}\"];",
            escape(&labels.join("\\n"))
        );
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders the full transition table of a type as aligned plain text.
///
/// Useful in `repro` reports: one row per value, one column per operation,
/// each cell showing `response → next value`.
pub fn to_table_text<T: ObjectType + ?Sized>(ty: &T) -> String {
    let headers: Vec<String> = (0..ty.num_ops())
        .map(|op| ty.op_name(OpId(op as u16)))
        .collect();
    let mut rows = Vec::with_capacity(ty.num_values());
    for v in 0..ty.num_values() {
        let value = ValueId(v as u16);
        let mut row = vec![ty.value_name(value)];
        for op in 0..ty.num_ops() {
            let out = ty.apply(value, OpId(op as u16));
            row.push(format!(
                "{} → {}",
                ty.response_name(out.response),
                ty.value_name(out.next)
            ));
        }
        rows.push(row);
    }
    // Column widths (character counts; good enough for ASCII-ish names).
    let ncols = headers.len() + 1;
    let mut widths = vec![0usize; ncols];
    widths[0] = "value".chars().count();
    for (i, h) in headers.iter().enumerate() {
        widths[i + 1] = h.chars().count();
    }
    for row in &rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let render_row = |cells: &[String]| {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            let pad = widths[i] - cell.chars().count();
            let _ = write!(line, "{}{}  ", cell, " ".repeat(pad));
        }
        line.trim_end().to_string()
    };
    let mut all = Vec::with_capacity(rows.len() + 1);
    let mut head = vec!["value".to_string()];
    head.extend(headers);
    all.push(render_row(&head));
    for row in &rows {
        all.push(render_row(row));
    }
    all.join("\n")
}

fn escape(s: &str) -> String {
    s.replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::{TestAndSet, Tnn};

    #[test]
    fn dot_contains_all_values() {
        let t = Tnn::new(5, 2);
        let dot = to_dot(&t, false);
        for v in 0..t.num_values() {
            let name = t.value_name(ValueId(v as u16));
            assert!(dot.contains(&name), "missing value {name}");
        }
    }

    #[test]
    fn dot_merges_parallel_edges() {
        let t = Tnn::new(5, 2);
        let dot = to_dot(&t, false);
        // op_0 and op_1 both take s_(0,1) to s_(0,2): one edge, two labels.
        let v_from = t.s_xi(0, 1).0;
        let v_to = t.s_xi(0, 2).0;
        let needle = format!("v{v_from} -> v{v_to}");
        assert_eq!(dot.matches(&needle).count(), 1);
        let line = dot.lines().find(|l| l.contains(&needle)).unwrap();
        assert!(line.contains("op_0/0"));
        assert!(line.contains("op_1/0"));
    }

    #[test]
    fn self_loops_are_optional() {
        let tas = TestAndSet::new();
        let without = to_dot(&tas, false);
        let with = to_dot(&tas, true);
        assert!(with.len() > without.len());
        assert!(with.contains("v1 -> v1"));
        assert!(!without.contains("v1 -> v1"));
    }

    #[test]
    fn table_text_has_row_per_value() {
        let t = Tnn::new(3, 1);
        let table = to_table_text(&t);
        let lines: Vec<_> = table.lines().collect();
        assert_eq!(lines.len(), 1 + t.num_values());
        assert!(lines[0].starts_with("value"));
        assert!(table.contains("s_⊥"));
    }
}
