//! [`TableType`]: a finite deterministic type given by explicit tables.
//!
//! Any [`ObjectType`] with finitely many values and operations can be
//! represented as a table; this is the normal form the deciders and the
//! synthesis search operate on, and the form that serializes.

use crate::ids::{OpId, Outcome, Response, ValueId};
use crate::object_type::ObjectType;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors produced when constructing or validating a [`TableType`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeSpecError {
    /// The transition table has the wrong number of rows (one per value).
    WrongRowCount {
        /// Rows found.
        found: usize,
        /// Rows expected (the number of values).
        expected: usize,
    },
    /// A row has the wrong number of columns (one per operation).
    WrongColCount {
        /// The offending value (row).
        value: ValueId,
        /// Columns found.
        found: usize,
        /// Columns expected (the number of operations).
        expected: usize,
    },
    /// An outcome references a value outside `0..num_values`.
    ValueOutOfRange {
        /// The source value (row).
        value: ValueId,
        /// The operation (column).
        op: OpId,
        /// The out-of-range target value.
        target: ValueId,
    },
    /// An outcome references a response outside `0..num_responses`.
    ResponseOutOfRange {
        /// The source value (row).
        value: ValueId,
        /// The operation (column).
        op: OpId,
        /// The out-of-range response.
        response: Response,
    },
    /// The type has no values or no operations.
    Empty,
    /// A name list has the wrong length.
    WrongNameCount {
        /// Which list is wrong: `"value"`, `"op"`, or `"response"`.
        kind: &'static str,
        /// Names found.
        found: usize,
        /// Names expected.
        expected: usize,
    },
}

impl fmt::Display for TypeSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeSpecError::WrongRowCount { found, expected } => {
                write!(f, "transition table has {found} rows, expected {expected}")
            }
            TypeSpecError::WrongColCount {
                value,
                found,
                expected,
            } => write!(
                f,
                "row for {value} has {found} columns, expected {expected}"
            ),
            TypeSpecError::ValueOutOfRange { value, op, target } => {
                write!(
                    f,
                    "outcome of {op} on {value} targets out-of-range {target}"
                )
            }
            TypeSpecError::ResponseOutOfRange {
                value,
                op,
                response,
            } => write!(
                f,
                "outcome of {op} on {value} returns out-of-range {response}"
            ),
            TypeSpecError::Empty => {
                write!(f, "type must have at least one value and one operation")
            }
            TypeSpecError::WrongNameCount {
                kind,
                found,
                expected,
            } => write!(
                f,
                "{kind} name list has {found} entries, expected {expected}"
            ),
        }
    }
}

impl std::error::Error for TypeSpecError {}

/// A finite deterministic type represented by an explicit transition table.
///
/// Row `v`, column `op` of the table holds the [`Outcome`] of applying
/// operation `op` to an object with value `v`.
///
/// # Examples
///
/// Build a sticky bit by hand:
///
/// ```
/// use rcn_spec::{ObjectType, Outcome, Response, TableType, ValueId};
///
/// # fn main() -> Result<(), rcn_spec::TypeSpecError> {
/// let mut b = TableType::builder("sticky", 3, 2, 3);
/// // values: 0 = ⊥, 1 = stuck-0, 2 = stuck-1; ops: write0, write1
/// b.set(0, 0, Outcome::new(Response::new(1), ValueId::new(1)));
/// b.set(0, 1, Outcome::new(Response::new(2), ValueId::new(2)));
/// for v in 1..3u16 {
///     for op in 0..2u16 {
///         b.set(v, op, Outcome::new(Response::new(v), ValueId::new(v)));
///     }
/// }
/// let sticky = b.build()?;
/// assert_eq!(sticky.num_values(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableType {
    name: String,
    num_values: usize,
    num_ops: usize,
    num_responses: usize,
    /// `table[v][op]` = outcome of applying `op` to value `v`.
    table: Vec<Vec<Outcome>>,
    value_names: Vec<String>,
    op_names: Vec<String>,
    response_names: Vec<String>,
}

impl TableType {
    /// Starts a [`TableTypeBuilder`] with default (`v#`/`op#`/`r#`) names.
    pub fn builder(
        name: impl Into<String>,
        num_values: usize,
        num_ops: usize,
        num_responses: usize,
    ) -> TableTypeBuilder {
        TableTypeBuilder::new(name, num_values, num_ops, num_responses)
    }

    /// Converts any [`ObjectType`] into its table normal form, copying names.
    ///
    /// # Examples
    ///
    /// ```
    /// use rcn_spec::{zoo::TestAndSet, ObjectType, TableType};
    /// let t = TableType::from_type(&TestAndSet::new());
    /// assert_eq!(t.num_values(), TestAndSet::new().num_values());
    /// assert!(t.is_readable());
    /// ```
    pub fn from_type<T: ObjectType + ?Sized>(ty: &T) -> TableType {
        let num_values = ty.num_values();
        let num_ops = ty.num_ops();
        let num_responses = ty.num_responses();
        let mut table = Vec::with_capacity(num_values);
        for v in 0..num_values {
            let mut row = Vec::with_capacity(num_ops);
            for op in 0..num_ops {
                row.push(ty.apply(ValueId(v as u16), OpId(op as u16)));
            }
            table.push(row);
        }
        TableType {
            name: ty.name(),
            num_values,
            num_ops,
            num_responses,
            table,
            value_names: (0..num_values)
                .map(|v| ty.value_name(ValueId(v as u16)))
                .collect(),
            op_names: (0..num_ops).map(|o| ty.op_name(OpId(o as u16))).collect(),
            response_names: (0..num_responses)
                .map(|r| ty.response_name(Response(r as u16)))
                .collect(),
        }
    }

    /// Validates internal consistency (row/column counts, outcome ranges).
    ///
    /// # Errors
    ///
    /// Returns the first [`TypeSpecError`] found. A `TableType` built through
    /// [`TableTypeBuilder::build`] is always valid; this is useful after
    /// deserialization.
    pub fn validate(&self) -> Result<(), TypeSpecError> {
        if self.num_values == 0 || self.num_ops == 0 {
            return Err(TypeSpecError::Empty);
        }
        if self.table.len() != self.num_values {
            return Err(TypeSpecError::WrongRowCount {
                found: self.table.len(),
                expected: self.num_values,
            });
        }
        for (v, row) in self.table.iter().enumerate() {
            let value = ValueId(v as u16);
            if row.len() != self.num_ops {
                return Err(TypeSpecError::WrongColCount {
                    value,
                    found: row.len(),
                    expected: self.num_ops,
                });
            }
            for (op, out) in row.iter().enumerate() {
                let op = OpId(op as u16);
                if out.next.index() >= self.num_values {
                    return Err(TypeSpecError::ValueOutOfRange {
                        value,
                        op,
                        target: out.next,
                    });
                }
                if out.response.index() >= self.num_responses {
                    return Err(TypeSpecError::ResponseOutOfRange {
                        value,
                        op,
                        response: out.response,
                    });
                }
            }
        }
        for (kind, found, expected) in [
            ("value", self.value_names.len(), self.num_values),
            ("op", self.op_names.len(), self.num_ops),
            ("response", self.response_names.len(), self.num_responses),
        ] {
            if found != expected {
                return Err(TypeSpecError::WrongNameCount {
                    kind,
                    found,
                    expected,
                });
            }
        }
        Ok(())
    }
}

impl ObjectType for TableType {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn num_values(&self) -> usize {
        self.num_values
    }

    fn num_ops(&self) -> usize {
        self.num_ops
    }

    fn num_responses(&self) -> usize {
        self.num_responses
    }

    fn apply(&self, value: ValueId, op: OpId) -> Outcome {
        self.table[value.index()][op.index()]
    }

    fn value_name(&self, value: ValueId) -> String {
        self.value_names[value.index()].clone()
    }

    fn op_name(&self, op: OpId) -> String {
        self.op_names[op.index()].clone()
    }

    fn response_name(&self, response: Response) -> String {
        self.response_names[response.index()].clone()
    }
}

/// Incremental builder for [`TableType`].
///
/// Every `(value, op)` cell must be filled with [`set`](Self::set) before
/// [`build`](Self::build) succeeds; names are optional.
#[derive(Debug, Clone)]
pub struct TableTypeBuilder {
    name: String,
    num_values: usize,
    num_ops: usize,
    num_responses: usize,
    table: Vec<Vec<Option<Outcome>>>,
    value_names: Vec<String>,
    op_names: Vec<String>,
    response_names: Vec<String>,
}

impl TableTypeBuilder {
    /// Creates a builder for a type with the given dimensions.
    pub fn new(
        name: impl Into<String>,
        num_values: usize,
        num_ops: usize,
        num_responses: usize,
    ) -> Self {
        TableTypeBuilder {
            name: name.into(),
            num_values,
            num_ops,
            num_responses,
            table: vec![vec![None; num_ops]; num_values],
            value_names: (0..num_values).map(|v| format!("v{v}")).collect(),
            op_names: (0..num_ops).map(|o| format!("op{o}")).collect(),
            response_names: (0..num_responses).map(|r| format!("r{r}")).collect(),
        }
    }

    /// Sets the outcome of applying `op` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `value` or `op` is out of range.
    pub fn set(&mut self, value: u16, op: u16, outcome: Outcome) -> &mut Self {
        self.table[value as usize][op as usize] = Some(outcome);
        self
    }

    /// Names a value (for DOT output and reports).
    pub fn value_name(&mut self, value: u16, name: impl Into<String>) -> &mut Self {
        self.value_names[value as usize] = name.into();
        self
    }

    /// Names an operation.
    pub fn op_name(&mut self, op: u16, name: impl Into<String>) -> &mut Self {
        self.op_names[op as usize] = name.into();
        self
    }

    /// Names a response.
    pub fn response_name(&mut self, response: u16, name: impl Into<String>) -> &mut Self {
        self.response_names[response as usize] = name.into();
        self
    }

    /// Finishes the builder, validating the result.
    ///
    /// # Errors
    ///
    /// Returns [`TypeSpecError`] if a cell was never set, dimensions are
    /// empty, or an outcome is out of range. Unset cells are reported as
    /// [`TypeSpecError::WrongColCount`]-style errors via validation after
    /// defaulting; more precisely, this method reports the first missing cell
    /// as a [`TypeSpecError::ValueOutOfRange`] with the cell's coordinates.
    pub fn build(&self) -> Result<TableType, TypeSpecError> {
        if self.num_values == 0 || self.num_ops == 0 {
            return Err(TypeSpecError::Empty);
        }
        let mut table = Vec::with_capacity(self.num_values);
        for (v, row) in self.table.iter().enumerate() {
            let mut out_row = Vec::with_capacity(self.num_ops);
            for (op, cell) in row.iter().enumerate() {
                match cell {
                    Some(out) => out_row.push(*out),
                    None => {
                        return Err(TypeSpecError::ValueOutOfRange {
                            value: ValueId(v as u16),
                            op: OpId(op as u16),
                            target: ValueId(u16::MAX),
                        })
                    }
                }
            }
            table.push(out_row);
        }
        let ty = TableType {
            name: self.name.clone(),
            num_values: self.num_values,
            num_ops: self.num_ops,
            num_responses: self.num_responses,
            table,
            value_names: self.value_names.clone(),
            op_names: self.op_names.clone(),
            response_names: self.response_names.clone(),
        };
        ty.validate()?;
        Ok(ty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TableType {
        let mut b = TableType::builder("tiny", 2, 1, 2);
        b.set(0, 0, Outcome::new(Response(0), ValueId(1)));
        b.set(1, 0, Outcome::new(Response(1), ValueId(1)));
        b.build().unwrap()
    }

    #[test]
    fn builder_produces_valid_table() {
        let t = tiny();
        assert!(t.validate().is_ok());
        assert_eq!(
            t.apply(ValueId(0), OpId(0)),
            Outcome::new(Response(0), ValueId(1))
        );
    }

    #[test]
    fn missing_cell_is_an_error() {
        let b = TableType::builder("partial", 2, 1, 1);
        assert!(b.build().is_err());
    }

    #[test]
    fn empty_type_is_rejected() {
        let b = TableType::builder("empty", 0, 0, 0);
        assert_eq!(b.build().unwrap_err(), TypeSpecError::Empty);
    }

    #[test]
    fn out_of_range_target_is_rejected() {
        let mut b = TableType::builder("bad", 1, 1, 1);
        b.set(0, 0, Outcome::new(Response(0), ValueId(5)));
        match b.build().unwrap_err() {
            TypeSpecError::ValueOutOfRange { target, .. } => assert_eq!(target, ValueId(5)),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn out_of_range_response_is_rejected() {
        let mut b = TableType::builder("bad", 1, 1, 1);
        b.set(0, 0, Outcome::new(Response(9), ValueId(0)));
        match b.build().unwrap_err() {
            TypeSpecError::ResponseOutOfRange { response, .. } => assert_eq!(response, Response(9)),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn names_are_preserved() {
        let mut b = TableType::builder("named", 1, 1, 1);
        b.set(0, 0, Outcome::new(Response(0), ValueId(0)));
        b.value_name(0, "s");
        b.op_name(0, "noop");
        b.response_name(0, "ack");
        let t = b.build().unwrap();
        assert_eq!(t.value_name(ValueId(0)), "s");
        assert_eq!(t.op_name(OpId(0)), "noop");
        assert_eq!(t.response_name(Response(0)), "ack");
    }

    #[test]
    fn from_type_round_trips_behaviour() {
        let t = tiny();
        let t2 = TableType::from_type(&t);
        assert_eq!(t, t2);
    }

    #[test]
    fn serde_json_round_trip() {
        let t = tiny();
        let json = serde_json::to_string(&t).unwrap();
        let back: TableType = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
        assert!(back.validate().is_ok());
    }

    #[test]
    fn error_display_is_informative() {
        let err = TypeSpecError::WrongRowCount {
            found: 1,
            expected: 2,
        };
        assert!(err.to_string().contains("1 rows"));
    }
}
