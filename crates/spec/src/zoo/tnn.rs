//! The paper's type `T_{n,n'}` (§4): consensus number `n`, recoverable
//! consensus number `n'`, for all `n > n' ≥ 1`.
//!
//! Quoting the specification (§4 of the paper):
//!
//! * values: `s`, `s_⊥`, and `s_{x,i}` for `x ∈ {0,1}`, `i ∈ {1,…,n−1}`
//!   (2n values in total);
//! * `op_0` on `s` returns 0 and moves to `s_{0,1}`; `op_1` on `s` returns 1
//!   and moves to `s_{1,1}`;
//! * `op_0`/`op_1` on `s_{x,i}` with `i < n−1` return `x` and move to
//!   `s_{x,i+1}`; on `s_{x,n−1}` they return `x` and move to `s_⊥`;
//! * every operation on `s_⊥` returns `⊥` and leaves the value unchanged;
//! * `op_R` behaves like a read — returns the current value without changing
//!   it — except on `s_{x,i}` with `i > n'`, where it returns `⊥` and
//!   *breaks* the object by moving it to `s_⊥`.
//!
//! The counter embedded in the values records both the team of the first
//! operation and how many `op_0`/`op_1` operations have been applied; `op_R`
//! destroys the object exactly when too many operations have already been
//! applied, which is what caps the *recoverable* consensus number at `n'`
//! while leaving the plain consensus number at `n`.

use crate::ids::{OpId, Outcome, Response, ValueId};
use crate::object_type::ObjectType;

/// The deterministic type `T_{n,n'}` of §4 of the paper.
///
/// Value ids: `s` = 0, `s_⊥` = 1, `s_{x,i}` = `2 + x·(n−1) + (i−1)`.
/// Op ids: `op_0` = 0, `op_1` = 1, `op_R` = 2.
/// Response ids: `0`, `1`, `⊥` = 2, and `value(v)` = `3 + v` for the value
/// reports of `op_R`.
///
/// # Examples
///
/// ```
/// use rcn_spec::{zoo::Tnn, ObjectType};
/// let t = Tnn::new(5, 2);
/// assert_eq!(t.num_values(), 10); // 2n values, as in Figure 3
/// assert!(!t.is_readable());      // op_R is destructive on deep values
/// assert!(Tnn::new(5, 4).is_readable()); // …but T_{n,n-1} never destroys
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tnn {
    n: usize,
    n_prime: usize,
}

impl Tnn {
    /// Creates `T_{n,n'}`.
    ///
    /// # Panics
    ///
    /// Panics unless `n > n' ≥ 1` (the paper's precondition).
    pub fn new(n: usize, n_prime: usize) -> Self {
        assert!(
            n > n_prime && n_prime >= 1,
            "T_(n,n') requires n > n' >= 1, got n={n}, n'={n_prime}"
        );
        Tnn { n, n_prime }
    }

    /// The parameter `n` (the consensus number, Lemma 15).
    pub fn n(&self) -> usize {
        self.n
    }

    /// The parameter `n'` (the recoverable consensus number, Lemma 16).
    pub fn n_prime(&self) -> usize {
        self.n_prime
    }

    /// Value id of the initial value `s`.
    pub const fn s(&self) -> ValueId {
        ValueId(0)
    }

    /// Value id of the broken value `s_⊥`.
    pub const fn s_bottom(&self) -> ValueId {
        ValueId(1)
    }

    /// Value id of `s_{x,i}`.
    ///
    /// # Panics
    ///
    /// Panics unless `x ≤ 1` and `1 ≤ i ≤ n−1`.
    pub fn s_xi(&self, x: usize, i: usize) -> ValueId {
        assert!(x <= 1 && (1..self.n).contains(&i), "s_(x,i) out of range");
        ValueId((2 + x * (self.n - 1) + (i - 1)) as u16)
    }

    /// Decodes a value id into `(x, i)` if it is some `s_{x,i}`.
    pub fn decode(&self, value: ValueId) -> Option<(usize, usize)> {
        let idx = value.index();
        if idx < 2 {
            return None;
        }
        let off = idx - 2;
        let x = off / (self.n - 1);
        let i = off % (self.n - 1) + 1;
        (x <= 1).then_some((x, i))
    }

    /// The op id of `op_x`.
    ///
    /// # Panics
    ///
    /// Panics if `x > 1`.
    pub fn op_x(&self, x: usize) -> OpId {
        assert!(x <= 1, "op_x requires x in {{0,1}}");
        OpId(x as u16)
    }

    /// The op id of `op_R`.
    pub const fn op_r(&self) -> OpId {
        OpId(2)
    }

    /// The response id meaning "the value is `v`" (returned by `op_R`).
    pub fn value_response(&self, v: ValueId) -> Response {
        Response(3 + v.0)
    }

    /// The response id of `⊥`.
    pub const fn bottom_response(&self) -> Response {
        Response(2)
    }
}

impl ObjectType for Tnn {
    fn name(&self) -> String {
        format!("T_({},{})", self.n, self.n_prime)
    }

    fn num_values(&self) -> usize {
        2 * self.n
    }

    fn num_ops(&self) -> usize {
        3
    }

    fn num_responses(&self) -> usize {
        // 0, 1, ⊥, plus a value-report response per value (op_R only ever
        // reports s and shallow s_{x,i}, but we keep the space dense).
        3 + self.num_values()
    }

    fn apply(&self, value: ValueId, op: OpId) -> Outcome {
        let bottom = self.bottom_response();
        match op.index() {
            x @ (0 | 1) => {
                if value == self.s() {
                    // First operation records its own index.
                    Outcome::new(Response(x as u16), self.s_xi(x, 1))
                } else if value == self.s_bottom() {
                    Outcome::new(bottom, value)
                } else {
                    let (team, i) = self.decode(value).expect("in-range value");
                    let next = if i < self.n - 1 {
                        self.s_xi(team, i + 1)
                    } else {
                        self.s_bottom()
                    };
                    Outcome::new(Response(team as u16), next)
                }
            }
            2 => {
                if value == self.s_bottom() {
                    Outcome::new(bottom, value)
                } else if value == self.s() {
                    Outcome::new(self.value_response(value), value)
                } else {
                    let (_, i) = self.decode(value).expect("in-range value");
                    if i <= self.n_prime {
                        Outcome::new(self.value_response(value), value)
                    } else {
                        // op_R "breaks" the object past depth n'.
                        Outcome::new(bottom, self.s_bottom())
                    }
                }
            }
            _ => panic!("T_(n,n') has 3 operations, got {op}"),
        }
    }

    fn value_name(&self, value: ValueId) -> String {
        if value == self.s() {
            "s".into()
        } else if value == self.s_bottom() {
            "s_⊥".into()
        } else {
            let (x, i) = self.decode(value).expect("in-range value");
            format!("s_({x},{i})")
        }
    }

    fn op_name(&self, op: OpId) -> String {
        match op.index() {
            2 => "op_R".into(),
            x => format!("op_{x}"),
        }
    }

    fn response_name(&self, response: Response) -> String {
        match response.index() {
            0 => "0".into(),
            1 => "1".into(),
            2 => "⊥".into(),
            r => self.value_name(ValueId((r - 3) as u16)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object_type::{apply_all, check_closed};

    #[test]
    fn t52_matches_figure_3_dimensions() {
        let t = Tnn::new(5, 2);
        assert!(check_closed(&t).is_ok());
        assert_eq!(t.num_values(), 10);
        assert_eq!(t.num_ops(), 3);
    }

    #[test]
    fn first_op_records_its_index() {
        let t = Tnn::new(5, 2);
        let out0 = t.apply(t.s(), t.op_x(0));
        assert_eq!(out0.response, Response(0));
        assert_eq!(out0.next, t.s_xi(0, 1));
        let out1 = t.apply(t.s(), t.op_x(1));
        assert_eq!(out1.response, Response(1));
        assert_eq!(out1.next, t.s_xi(1, 1));
    }

    #[test]
    fn next_n_minus_1_ops_return_first_value() {
        // "the first operation applied to O determines the value returned by
        // the next n−1 operations applied to O" (§4).
        let t = Tnn::new(5, 2);
        let ops = vec![t.op_x(1), t.op_x(0), t.op_x(0), t.op_x(1), t.op_x(0)];
        let (outs, v) = apply_all(&t, t.s(), &ops);
        for out in &outs {
            assert_eq!(out.response, Response(1), "all n ops see the first value");
        }
        assert_eq!(v, t.s_bottom(), "the n-th op exhausts the counter");
    }

    #[test]
    fn n_plus_first_op_returns_bottom() {
        let t = Tnn::new(3, 1);
        let ops = vec![t.op_x(0); 4];
        let (outs, _) = apply_all(&t, t.s(), &ops);
        assert_eq!(outs[2].response, Response(0));
        assert_eq!(outs[3].response, t.bottom_response());
    }

    #[test]
    fn op_r_reads_shallow_values() {
        let t = Tnn::new(5, 2);
        // Depth 1 and 2 are ≤ n' = 2: op_R reports the value, non-mutating.
        let v1 = t.apply(t.s(), t.op_x(0)).next;
        let out = t.apply(v1, t.op_r());
        assert_eq!(out.response, t.value_response(v1));
        assert_eq!(out.next, v1);
        let v2 = t.apply(v1, t.op_x(1)).next;
        let out = t.apply(v2, t.op_r());
        assert_eq!(out.response, t.value_response(v2));
        assert_eq!(out.next, v2);
    }

    #[test]
    fn op_r_breaks_deep_values() {
        let t = Tnn::new(5, 2);
        let v3 = t.s_xi(0, 3); // depth 3 > n' = 2
        let out = t.apply(v3, t.op_r());
        assert_eq!(out.response, t.bottom_response());
        assert_eq!(out.next, t.s_bottom());
    }

    #[test]
    fn op_r_on_initial_value_reports_s() {
        let t = Tnn::new(4, 2);
        let out = t.apply(t.s(), t.op_r());
        assert_eq!(out.response, t.value_response(t.s()));
        assert_eq!(out.next, t.s());
    }

    #[test]
    fn bottom_absorbs_everything() {
        let t = Tnn::new(4, 2);
        for op in 0..3u16 {
            let out = t.apply(t.s_bottom(), OpId(op));
            assert_eq!(out.response, t.bottom_response());
            assert_eq!(out.next, t.s_bottom());
        }
    }

    #[test]
    fn readability_depends_on_gap() {
        // op_R is destructive iff some s_{x,i} with i > n' exists, i.e.
        // iff n' < n−1.
        assert!(!Tnn::new(5, 2).is_readable());
        assert!(!Tnn::new(3, 1).is_readable());
        assert!(Tnn::new(5, 4).is_readable());
        assert!(Tnn::new(2, 1).is_readable());
    }

    #[test]
    fn value_names_match_paper_notation() {
        let t = Tnn::new(5, 2);
        assert_eq!(t.value_name(t.s()), "s");
        assert_eq!(t.value_name(t.s_bottom()), "s_⊥");
        assert_eq!(t.value_name(t.s_xi(1, 3)), "s_(1,3)");
        assert_eq!(t.op_name(t.op_r()), "op_R");
    }

    #[test]
    fn decode_inverts_s_xi() {
        let t = Tnn::new(6, 3);
        for x in 0..2 {
            for i in 1..6 {
                assert_eq!(t.decode(t.s_xi(x, i)), Some((x, i)));
            }
        }
        assert_eq!(t.decode(t.s()), None);
        assert_eq!(t.decode(t.s_bottom()), None);
    }

    #[test]
    #[should_panic(expected = "requires n > n'")]
    fn invalid_parameters_are_rejected() {
        Tnn::new(3, 3);
    }
}
