//! Readable gap families: types whose consensus number exceeds their
//! recoverable consensus number.
//!
//! The paper's corollary (via DFFR'22's type `X_n`) is that for all `n ≥ 4`
//! there is a readable type with consensus number `n` and recoverable
//! consensus number `n−2`. The definition of `X_n` lives in DFFR'22 (reference \[4\] of the paper) and
//! is not reproduced in this paper, so this module provides:
//!
//! * [`TeamCounter`]: a readable family we designed and machine-verify with
//!   the deciders in `rcn-decide` — consensus number `n`, recoverable
//!   consensus number `n−1` (i.e. `n`-discerning, not `(n+1)`-discerning,
//!   `(n−1)`-recording, not `n`-recording). It witnesses a gap of 1 for
//!   readable types.
//! * [`Xn`]: our reconstruction attempt at a gap-2 readable family,
//!   produced by decider-driven synthesis (see `rcn-decide::synthesis`).
//!
//! `TeamCounter` works by having the first mutation permanently record its
//! operation index while a counter tracks how many mutations happened; after
//! `n` mutations the object collapses to an uninformative absorbing value.
//! With `n` processes the last applier still receives the recorded team as
//! its response, so the type is `n`-discerning; with `n` processes the value
//! set collapses (both teams reach the absorbing value), so it is not
//! `n`-recording.

use crate::ids::{OpId, Outcome, Response, ValueId};
use crate::object_type::ObjectType;

/// A readable type with consensus number `n` and recoverable consensus
/// number `n−1`.
///
/// * Values: `u` (0), `full` (1), and `(x, i)` for `x ∈ {0,1}`,
///   `i ∈ {1,…,n−1}` — value id `2 + x·(n−1) + (i−1)`.
/// * Operations: `mut_0` (0), `mut_1` (1), `read` (2).
/// * Responses: `0`, `1`, `⊥` (2), plus value reports `3 + v` for `read`.
///
/// `mut_x` applied to `u` records `x` and starts the counter at `(x,1)`;
/// either mutator applied to `(x,i)` returns the recorded `x` and advances
/// the counter; the `n`-th mutation moves to the absorbing `full` value,
/// *still* returning the recorded team; mutations on `full` return `⊥`.
///
/// # Examples
///
/// ```
/// use rcn_spec::{zoo::TeamCounter, ObjectType};
/// let tc = TeamCounter::new(4);
/// assert!(tc.is_readable());
/// let out = tc.apply(tc.u(), tc.mut_op(1));
/// assert_eq!(out.response.index(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TeamCounter {
    n: usize,
}

impl TeamCounter {
    /// Creates the team counter with collapse depth `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "team counter needs n >= 2");
        TeamCounter { n }
    }

    /// The parameter `n` (the consensus number of the family).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Value id of the initial value `u`.
    pub const fn u(&self) -> ValueId {
        ValueId(0)
    }

    /// Value id of the absorbing `full` value.
    pub const fn full(&self) -> ValueId {
        ValueId(1)
    }

    /// Value id of `(x, i)`.
    ///
    /// # Panics
    ///
    /// Panics unless `x ≤ 1` and `1 ≤ i ≤ n−1`.
    pub fn xi(&self, x: usize, i: usize) -> ValueId {
        assert!(x <= 1 && (1..self.n).contains(&i), "(x,i) out of range");
        ValueId((2 + x * (self.n - 1) + (i - 1)) as u16)
    }

    /// The op id of `mut_x`.
    ///
    /// # Panics
    ///
    /// Panics if `x > 1`.
    pub fn mut_op(&self, x: usize) -> OpId {
        assert!(x <= 1, "mut_x requires x in {{0,1}}");
        OpId(x as u16)
    }

    /// The op id of `read`.
    pub const fn read_op_id(&self) -> OpId {
        OpId(2)
    }

    fn decode(&self, value: ValueId) -> Option<(usize, usize)> {
        let idx = value.index();
        if idx < 2 {
            return None;
        }
        let off = idx - 2;
        Some((off / (self.n - 1), off % (self.n - 1) + 1))
    }
}

impl ObjectType for TeamCounter {
    fn name(&self) -> String {
        format!("team-counter<{}>", self.n)
    }

    fn num_values(&self) -> usize {
        2 * self.n
    }

    fn num_ops(&self) -> usize {
        3
    }

    fn num_responses(&self) -> usize {
        3 + self.num_values()
    }

    fn apply(&self, value: ValueId, op: OpId) -> Outcome {
        match op.index() {
            x @ (0 | 1) => {
                if value == self.u() {
                    Outcome::new(Response(x as u16), self.xi(x, 1))
                } else if value == self.full() {
                    Outcome::new(Response(2), value)
                } else {
                    let (team, i) = self.decode(value).expect("in-range value");
                    let next = if i < self.n - 1 {
                        self.xi(team, i + 1)
                    } else {
                        self.full()
                    };
                    Outcome::new(Response(team as u16), next)
                }
            }
            2 => Outcome::new(Response(3 + value.0), value),
            _ => panic!("team counter has 3 operations, got {op}"),
        }
    }

    fn value_name(&self, value: ValueId) -> String {
        if value == self.u() {
            "u".into()
        } else if value == self.full() {
            "full".into()
        } else {
            let (x, i) = self.decode(value).expect("in-range value");
            format!("({x},{i})")
        }
    }

    fn op_name(&self, op: OpId) -> String {
        match op.index() {
            2 => "read".into(),
            x => format!("mut_{x}"),
        }
    }

    fn response_name(&self, response: Response) -> String {
        match response.index() {
            0 => "0".into(),
            1 => "1".into(),
            2 => "⊥".into(),
            r => self.value_name(ValueId((r - 3) as u16)),
        }
    }
}

/// Reconstruction target for DFFR'22's readable type `X_n`
/// (consensus number `n`, recoverable consensus number `n−2`).
///
/// The construction of `X_n` is given in DFFR'22 (reference \[4\] of the paper), which this paper cites
/// but does not restate. Our reconstruction is produced by the decider-driven
/// synthesis in `rcn-decide`; see `EXPERIMENTS.md` (E6) for the verification
/// status of the shipped candidate. The wrapper exists so that the rest of
/// the workspace can refer to the family by name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xn {
    n: usize,
    inner: crate::table::TableType,
}

impl Xn {
    /// Wraps a synthesized candidate table for parameter `n`.
    ///
    /// The caller (normally `rcn-decide::synthesis`) is responsible for
    /// having verified the discerning/recording numbers of `table`.
    pub fn from_table(n: usize, table: crate::table::TableType) -> Self {
        Xn { n, inner: table }
    }

    /// The parameter `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Access to the underlying table.
    pub fn table(&self) -> &crate::table::TableType {
        &self.inner
    }
}

impl ObjectType for Xn {
    fn name(&self) -> String {
        format!("X_{}", self.n)
    }

    fn num_values(&self) -> usize {
        self.inner.num_values()
    }

    fn num_ops(&self) -> usize {
        self.inner.num_ops()
    }

    fn num_responses(&self) -> usize {
        self.inner.num_responses()
    }

    fn apply(&self, value: ValueId, op: OpId) -> Outcome {
        self.inner.apply(value, op)
    }

    fn value_name(&self, value: ValueId) -> String {
        self.inner.value_name(value)
    }

    fn op_name(&self, op: OpId) -> String {
        self.inner.op_name(op)
    }

    fn response_name(&self, response: Response) -> String {
        self.inner.response_name(response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object_type::{apply_all, check_closed};

    #[test]
    fn team_counter_is_closed_and_readable() {
        for n in 2..6 {
            let tc = TeamCounter::new(n);
            assert!(check_closed(&tc).is_ok(), "n={n}");
            assert_eq!(tc.read_op(), Some(OpId(2)), "n={n}");
        }
    }

    #[test]
    fn all_n_mutations_report_the_first_team() {
        let tc = TeamCounter::new(4);
        let ops = vec![tc.mut_op(1), tc.mut_op(0), tc.mut_op(0), tc.mut_op(0)];
        let (outs, v) = apply_all(&tc, tc.u(), &ops);
        for out in &outs {
            assert_eq!(out.response, Response(1));
        }
        assert_eq!(v, tc.full());
    }

    #[test]
    fn mutation_past_collapse_is_uninformative() {
        let tc = TeamCounter::new(3);
        let ops = vec![tc.mut_op(0); 4];
        let (outs, _) = apply_all(&tc, tc.u(), &ops);
        assert_eq!(outs[2].response, Response(0)); // n-th mutation still informs
        assert_eq!(outs[3].response, Response(2)); // (n+1)-th does not
    }

    #[test]
    fn read_reports_the_exact_value() {
        let tc = TeamCounter::new(4);
        for v in 0..tc.num_values() {
            let value = ValueId(v as u16);
            let out = tc.apply(value, tc.read_op_id());
            assert_eq!(out.next, value);
            assert_eq!(out.response, Response(3 + v as u16));
        }
    }

    #[test]
    fn value_names_are_stable() {
        let tc = TeamCounter::new(3);
        assert_eq!(tc.value_name(tc.u()), "u");
        assert_eq!(tc.value_name(tc.full()), "full");
        assert_eq!(tc.value_name(tc.xi(1, 2)), "(1,2)");
    }

    #[test]
    fn xn_wrapper_delegates_to_table() {
        let tc = TeamCounter::new(3);
        let table = crate::table::TableType::from_type(&tc);
        let xn = Xn::from_table(3, table.clone());
        assert_eq!(xn.name(), "X_3");
        assert_eq!(xn.num_values(), table.num_values());
        assert_eq!(
            xn.apply(ValueId(0), OpId(0)),
            table.apply(ValueId(0), OpId(0))
        );
        assert_eq!(xn.table(), &table);
    }
}
