//! Arithmetic read-modify-write types: fetch-and-add, swap, compare-and-swap.
//!
//! These populate levels 2 and ∞ of Herlihy's hierarchy and give the deciders
//! a spread of readable types whose discerning and recording numbers we can
//! compare (experiment E8).

use crate::ids::{OpId, Outcome, Response, ValueId};
use crate::object_type::ObjectType;

/// Fetch-and-add over `Z_m` (addition modulo `m`).
///
/// * Values: `0..m`.
/// * Operations: `fetch&add(1)` (op 0), `read` (op 1).
/// * Responses: `0..m` (the old value).
///
/// Fetch-and-add has consensus number 2. The modulus keeps the type finite;
/// the deciders only ever explore boundedly many increments, so any `m`
/// larger than the process count under study behaves like the unbounded
/// type.
///
/// # Examples
///
/// ```
/// use rcn_spec::{zoo::FetchAndAdd, ObjectType, OpId, ValueId};
/// let faa = FetchAndAdd::new(4);
/// let out = faa.apply(ValueId::new(3), OpId::new(0));
/// assert_eq!(out.response.index(), 3); // returns the old value
/// assert_eq!(out.next, ValueId::new(0)); // wraps modulo 4
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchAndAdd {
    modulus: usize,
}

impl FetchAndAdd {
    /// Creates a fetch-and-add object over `Z_modulus`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus < 2`.
    pub fn new(modulus: usize) -> Self {
        assert!(modulus >= 2, "fetch-and-add modulus must be at least 2");
        FetchAndAdd { modulus }
    }
}

impl ObjectType for FetchAndAdd {
    fn name(&self) -> String {
        format!("fetch-and-add<{}>", self.modulus)
    }

    fn num_values(&self) -> usize {
        self.modulus
    }

    fn num_ops(&self) -> usize {
        2
    }

    fn num_responses(&self) -> usize {
        self.modulus
    }

    fn apply(&self, value: ValueId, op: OpId) -> Outcome {
        match op.index() {
            0 => {
                let next = ((value.index() + 1) % self.modulus) as u16;
                Outcome::new(Response(value.0), ValueId(next))
            }
            1 => Outcome::new(Response(value.0), value),
            _ => panic!("fetch-and-add has 2 operations, got {op}"),
        }
    }

    fn op_name(&self, op: OpId) -> String {
        match op.index() {
            0 => "fetch&add(1)".into(),
            _ => "read".into(),
        }
    }

    fn value_name(&self, value: ValueId) -> String {
        format!("{}", value.0)
    }

    fn response_name(&self, response: Response) -> String {
        format!("{}", response.0)
    }
}

/// Swap over a finite domain: write a constant, return the old value.
///
/// * Values: `0..domain`.
/// * Operations: `swap(k)` (op ids `0..domain`), `read` (op id `domain`).
/// * Responses: `0..domain` (the old value).
///
/// Swap has consensus number 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Swap {
    domain: usize,
}

impl Swap {
    /// Creates a swap object over `{0, …, domain-1}`.
    ///
    /// # Panics
    ///
    /// Panics if `domain == 0`.
    pub fn new(domain: usize) -> Self {
        assert!(domain > 0, "swap domain must be nonempty");
        Swap { domain }
    }

    /// The op id of `swap(k)`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= domain`.
    pub fn swap_op(&self, k: usize) -> OpId {
        assert!(k < self.domain, "swap value out of domain");
        OpId(k as u16)
    }
}

impl ObjectType for Swap {
    fn name(&self) -> String {
        format!("swap<{}>", self.domain)
    }

    fn num_values(&self) -> usize {
        self.domain
    }

    fn num_ops(&self) -> usize {
        self.domain + 1
    }

    fn num_responses(&self) -> usize {
        self.domain
    }

    fn apply(&self, value: ValueId, op: OpId) -> Outcome {
        if op.index() < self.domain {
            Outcome::new(Response(value.0), ValueId(op.0))
        } else {
            Outcome::new(Response(value.0), value)
        }
    }

    fn op_name(&self, op: OpId) -> String {
        if op.index() < self.domain {
            format!("swap({})", op.0)
        } else {
            "read".into()
        }
    }

    fn value_name(&self, value: ValueId) -> String {
        format!("{}", value.0)
    }

    fn response_name(&self, response: Response) -> String {
        format!("{}", response.0)
    }
}

/// Compare-and-swap over a finite domain, returning the old value.
///
/// * Values: `0..domain`.
/// * Operations: `cas(a,b)` for every ordered pair `(a,b)`
///   (op id `a*domain + b`). `cas(a,a)` never changes the value and returns
///   the old value, so it doubles as the read operation.
/// * Responses: `0..domain` (the old value).
///
/// Compare-and-swap has infinite consensus number; the decider reports its
/// discerning number as "at least the cap".
///
/// # Examples
///
/// ```
/// use rcn_spec::{zoo::CompareAndSwap, ObjectType, ValueId};
/// let cas = CompareAndSwap::new(3);
/// let out = cas.apply(ValueId::new(0), cas.cas_op(0, 2));
/// assert_eq!(out.next, ValueId::new(2)); // succeeded
/// let out = cas.apply(out.next, cas.cas_op(0, 1));
/// assert_eq!(out.next, ValueId::new(2)); // failed: value was 2, not 0
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompareAndSwap {
    domain: usize,
}

impl CompareAndSwap {
    /// Creates a compare-and-swap object over `{0, …, domain-1}`.
    ///
    /// # Panics
    ///
    /// Panics if `domain == 0`.
    pub fn new(domain: usize) -> Self {
        assert!(domain > 0, "cas domain must be nonempty");
        CompareAndSwap { domain }
    }

    /// The op id of `cas(expected, new)`.
    ///
    /// # Panics
    ///
    /// Panics if either argument is out of domain.
    pub fn cas_op(&self, expected: usize, new: usize) -> OpId {
        assert!(
            expected < self.domain && new < self.domain,
            "cas args out of domain"
        );
        OpId((expected * self.domain + new) as u16)
    }
}

impl ObjectType for CompareAndSwap {
    fn name(&self) -> String {
        format!("compare-and-swap<{}>", self.domain)
    }

    fn num_values(&self) -> usize {
        self.domain
    }

    fn num_ops(&self) -> usize {
        self.domain * self.domain
    }

    fn num_responses(&self) -> usize {
        self.domain
    }

    fn apply(&self, value: ValueId, op: OpId) -> Outcome {
        let expected = op.index() / self.domain;
        let new = op.index() % self.domain;
        let next = if value.index() == expected {
            ValueId(new as u16)
        } else {
            value
        };
        Outcome::new(Response(value.0), next)
    }

    fn op_name(&self, op: OpId) -> String {
        let expected = op.index() / self.domain;
        let new = op.index() % self.domain;
        format!("cas({expected},{new})")
    }

    fn value_name(&self, value: ValueId) -> String {
        format!("{}", value.0)
    }

    fn response_name(&self, response: Response) -> String {
        format!("{}", response.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object_type::check_closed;

    #[test]
    fn faa_wraps_and_reports_old_value() {
        let faa = FetchAndAdd::new(3);
        assert!(check_closed(&faa).is_ok());
        let out = faa.apply(ValueId(2), OpId(0));
        assert_eq!(out.response, Response(2));
        assert_eq!(out.next, ValueId(0));
    }

    #[test]
    fn faa_is_readable() {
        assert!(FetchAndAdd::new(4).is_readable());
    }

    #[test]
    fn swap_returns_old_value() {
        let sw = Swap::new(3);
        assert!(check_closed(&sw).is_ok());
        let out = sw.apply(ValueId(1), sw.swap_op(2));
        assert_eq!(out.response, Response(1));
        assert_eq!(out.next, ValueId(2));
    }

    #[test]
    fn swap_read_is_detected() {
        let sw = Swap::new(2);
        assert_eq!(sw.read_op(), Some(OpId(2)));
    }

    #[test]
    fn cas_succeeds_only_on_match() {
        let cas = CompareAndSwap::new(3);
        assert!(check_closed(&cas).is_ok());
        let hit = cas.apply(ValueId(1), cas.cas_op(1, 2));
        assert_eq!(hit.next, ValueId(2));
        let miss = cas.apply(ValueId(1), cas.cas_op(0, 2));
        assert_eq!(miss.next, ValueId(1));
        assert_eq!(miss.response, Response(1));
    }

    #[test]
    fn cas_identity_op_is_a_read() {
        let cas = CompareAndSwap::new(3);
        // cas(a,a) never mutates and returns the old value.
        assert!(cas.is_read_op(cas.cas_op(0, 0)));
        assert!(cas.is_readable());
    }

    #[test]
    fn cas_op_ids_are_dense() {
        let cas = CompareAndSwap::new(2);
        assert_eq!(cas.cas_op(1, 1), OpId(3));
        assert_eq!(cas.num_ops(), 4);
        assert_eq!(cas.op_name(OpId(2)), "cas(1,0)");
    }

    #[test]
    #[should_panic(expected = "out of domain")]
    fn cas_rejects_out_of_domain_args() {
        CompareAndSwap::new(2).cas_op(2, 0);
    }
}
