//! Bounded container types: FIFO queue and LIFO stack.
//!
//! Queues and stacks are Herlihy's classic consensus-number-2 types. They are
//! *not* readable (neither supports an operation that reveals the whole
//! contents without mutating), which makes them useful counterpoints in the
//! hierarchy experiments: the sufficiency half of the robustness theorem does
//! not apply to them.

use crate::ids::{OpId, Outcome, Response, ValueId};
use crate::object_type::ObjectType;

/// Enumerates all sequences over `{0..alphabet}` of length at most `capacity`
/// and provides dense ids for them. Sequence id 0 is the empty sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SeqCode {
    alphabet: usize,
    capacity: usize,
    /// `offsets[len]` = id of the first sequence of length `len`.
    offsets: Vec<usize>,
}

impl SeqCode {
    fn new(alphabet: usize, capacity: usize) -> Self {
        let mut offsets = Vec::with_capacity(capacity + 2);
        let mut total = 0usize;
        let mut count = 1usize; // alphabet^len
        for _ in 0..=capacity {
            offsets.push(total);
            total += count;
            count *= alphabet;
        }
        offsets.push(total);
        SeqCode {
            alphabet,
            capacity,
            offsets,
        }
    }

    fn num_values(&self) -> usize {
        self.offsets[self.capacity + 1]
    }

    fn decode(&self, id: usize) -> Vec<usize> {
        let len = match self.offsets.binary_search(&id) {
            Ok(i) if i <= self.capacity => i,
            Ok(i) => i - 1,
            Err(i) => i - 1,
        };
        let mut rem = id - self.offsets[len];
        let mut seq = vec![0usize; len];
        for slot in seq.iter_mut().rev() {
            *slot = rem % self.alphabet;
            rem /= self.alphabet;
        }
        seq
    }

    fn encode(&self, seq: &[usize]) -> usize {
        debug_assert!(seq.len() <= self.capacity);
        let mut rem = 0usize;
        for &e in seq {
            debug_assert!(e < self.alphabet);
            rem = rem * self.alphabet + e;
        }
        self.offsets[seq.len()] + rem
    }
}

/// A bounded FIFO queue over a small element alphabet.
///
/// * Values: all element sequences of length ≤ `capacity` (front of the
///   queue first). Value 0 is the empty queue.
/// * Operations: `enq(k)` for each alphabet element (op ids `0..alphabet`),
///   then `deq` (op id `alphabet`).
/// * Responses: `0..alphabet` (dequeued element), `empty` (`alphabet`),
///   `ok` (`alphabet+1`), `full` (`alphabet+2`).
///
/// `deq` on an empty queue returns `empty`; `enq` on a full queue returns
/// `full` and leaves the queue unchanged (a deterministic total extension of
/// the usual partial specification).
///
/// # Examples
///
/// ```
/// use rcn_spec::{zoo::BoundedQueue, ObjectType, ValueId};
/// let q = BoundedQueue::new(2, 3);
/// let v = q.apply(ValueId::new(0), q.enq_op(1)).next;
/// let v = q.apply(v, q.enq_op(0)).next;
/// let out = q.apply(v, q.deq_op());
/// assert_eq!(out.response.index(), 1); // FIFO: first enqueued comes out
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundedQueue {
    code: SeqCode,
}

impl BoundedQueue {
    /// Creates a queue over `{0..alphabet}` holding at most `capacity`
    /// elements.
    ///
    /// # Panics
    ///
    /// Panics if `alphabet == 0` or `capacity == 0`.
    pub fn new(alphabet: usize, capacity: usize) -> Self {
        assert!(
            alphabet > 0 && capacity > 0,
            "queue dimensions must be positive"
        );
        BoundedQueue {
            code: SeqCode::new(alphabet, capacity),
        }
    }

    /// The op id of `enq(k)`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not in the alphabet.
    pub fn enq_op(&self, k: usize) -> OpId {
        assert!(k < self.code.alphabet, "element out of alphabet");
        OpId(k as u16)
    }

    /// The op id of `deq`.
    pub fn deq_op(&self) -> OpId {
        OpId(self.code.alphabet as u16)
    }
}

impl ObjectType for BoundedQueue {
    fn name(&self) -> String {
        format!("queue<{},{}>", self.code.alphabet, self.code.capacity)
    }

    fn num_values(&self) -> usize {
        self.code.num_values()
    }

    fn num_ops(&self) -> usize {
        self.code.alphabet + 1
    }

    fn num_responses(&self) -> usize {
        self.code.alphabet + 3
    }

    fn apply(&self, value: ValueId, op: OpId) -> Outcome {
        let a = self.code.alphabet;
        let mut seq = self.code.decode(value.index());
        if op.index() < a {
            // enq(k)
            if seq.len() == self.code.capacity {
                Outcome::new(Response((a + 2) as u16), value)
            } else {
                seq.push(op.index());
                Outcome::new(
                    Response((a + 1) as u16),
                    ValueId(self.code.encode(&seq) as u16),
                )
            }
        } else {
            // deq
            if seq.is_empty() {
                Outcome::new(Response(a as u16), value)
            } else {
                let front = seq.remove(0);
                Outcome::new(
                    Response(front as u16),
                    ValueId(self.code.encode(&seq) as u16),
                )
            }
        }
    }

    fn value_name(&self, value: ValueId) -> String {
        let seq = self.code.decode(value.index());
        if seq.is_empty() {
            "[]".into()
        } else {
            format!(
                "[{}]",
                seq.iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(",")
            )
        }
    }

    fn op_name(&self, op: OpId) -> String {
        if op.index() < self.code.alphabet {
            format!("enq({})", op.0)
        } else {
            "deq".into()
        }
    }

    fn response_name(&self, response: Response) -> String {
        let a = self.code.alphabet;
        match response.index() {
            r if r < a => format!("{r}"),
            r if r == a => "empty".into(),
            r if r == a + 1 => "ok".into(),
            _ => "full".into(),
        }
    }
}

/// A bounded LIFO stack over a small element alphabet.
///
/// Same value/operation/response layout as [`BoundedQueue`], but `pop`
/// removes the most recently pushed element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundedStack {
    code: SeqCode,
}

impl BoundedStack {
    /// Creates a stack over `{0..alphabet}` holding at most `capacity`
    /// elements.
    ///
    /// # Panics
    ///
    /// Panics if `alphabet == 0` or `capacity == 0`.
    pub fn new(alphabet: usize, capacity: usize) -> Self {
        assert!(
            alphabet > 0 && capacity > 0,
            "stack dimensions must be positive"
        );
        BoundedStack {
            code: SeqCode::new(alphabet, capacity),
        }
    }

    /// The op id of `push(k)`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not in the alphabet.
    pub fn push_op(&self, k: usize) -> OpId {
        assert!(k < self.code.alphabet, "element out of alphabet");
        OpId(k as u16)
    }

    /// The op id of `pop`.
    pub fn pop_op(&self) -> OpId {
        OpId(self.code.alphabet as u16)
    }
}

impl ObjectType for BoundedStack {
    fn name(&self) -> String {
        format!("stack<{},{}>", self.code.alphabet, self.code.capacity)
    }

    fn num_values(&self) -> usize {
        self.code.num_values()
    }

    fn num_ops(&self) -> usize {
        self.code.alphabet + 1
    }

    fn num_responses(&self) -> usize {
        self.code.alphabet + 3
    }

    fn apply(&self, value: ValueId, op: OpId) -> Outcome {
        let a = self.code.alphabet;
        let mut seq = self.code.decode(value.index());
        if op.index() < a {
            if seq.len() == self.code.capacity {
                Outcome::new(Response((a + 2) as u16), value)
            } else {
                seq.push(op.index());
                Outcome::new(
                    Response((a + 1) as u16),
                    ValueId(self.code.encode(&seq) as u16),
                )
            }
        } else if seq.is_empty() {
            Outcome::new(Response(a as u16), value)
        } else {
            let top = seq.pop().expect("nonempty");
            Outcome::new(Response(top as u16), ValueId(self.code.encode(&seq) as u16))
        }
    }

    fn value_name(&self, value: ValueId) -> String {
        let seq = self.code.decode(value.index());
        if seq.is_empty() {
            "[]".into()
        } else {
            format!(
                "[{}]",
                seq.iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(",")
            )
        }
    }

    fn op_name(&self, op: OpId) -> String {
        if op.index() < self.code.alphabet {
            format!("push({})", op.0)
        } else {
            "pop".into()
        }
    }

    fn response_name(&self, response: Response) -> String {
        let a = self.code.alphabet;
        match response.index() {
            r if r < a => format!("{r}"),
            r if r == a => "empty".into(),
            r if r == a + 1 => "ok".into(),
            _ => "full".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object_type::check_closed;

    #[test]
    fn seq_code_round_trips() {
        let code = SeqCode::new(2, 3);
        assert_eq!(code.num_values(), 1 + 2 + 4 + 8);
        for id in 0..code.num_values() {
            let seq = code.decode(id);
            assert_eq!(code.encode(&seq), id, "sequence {seq:?}");
        }
    }

    #[test]
    fn queue_is_fifo() {
        let q = BoundedQueue::new(2, 3);
        assert!(check_closed(&q).is_ok());
        let v = q.apply(ValueId(0), q.enq_op(0)).next;
        let v = q.apply(v, q.enq_op(1)).next;
        let out = q.apply(v, q.deq_op());
        assert_eq!(out.response, Response(0));
        let out2 = q.apply(out.next, q.deq_op());
        assert_eq!(out2.response, Response(1));
        assert_eq!(out2.next, ValueId(0));
    }

    #[test]
    fn stack_is_lifo() {
        let s = BoundedStack::new(2, 3);
        assert!(check_closed(&s).is_ok());
        let v = s.apply(ValueId(0), s.push_op(0)).next;
        let v = s.apply(v, s.push_op(1)).next;
        let out = s.apply(v, s.pop_op());
        assert_eq!(out.response, Response(1));
    }

    #[test]
    fn empty_deq_and_pop_report_empty() {
        let q = BoundedQueue::new(2, 2);
        let out = q.apply(ValueId(0), q.deq_op());
        assert_eq!(q.response_name(out.response), "empty");
        assert_eq!(out.next, ValueId(0));
        let s = BoundedStack::new(2, 2);
        let out = s.apply(ValueId(0), s.pop_op());
        assert_eq!(s.response_name(out.response), "empty");
    }

    #[test]
    fn full_enq_and_push_are_rejected() {
        let q = BoundedQueue::new(2, 1);
        let v = q.apply(ValueId(0), q.enq_op(1)).next;
        let out = q.apply(v, q.enq_op(0));
        assert_eq!(q.response_name(out.response), "full");
        assert_eq!(out.next, v);
    }

    #[test]
    fn containers_are_not_readable() {
        assert!(!BoundedQueue::new(2, 2).is_readable());
        assert!(!BoundedStack::new(2, 2).is_readable());
    }

    #[test]
    fn value_names_render_contents() {
        let q = BoundedQueue::new(2, 2);
        let v = q.apply(ValueId(0), q.enq_op(1)).next;
        let v = q.apply(v, q.enq_op(0)).next;
        assert_eq!(q.value_name(v), "[1,0]");
        assert_eq!(q.value_name(ValueId(0)), "[]");
    }
}
