//! The type zoo: concrete deterministic types used throughout the
//! experiments.
//!
//! | Type | Readable | Consensus # | Recoverable consensus # |
//! |------|----------|-------------|--------------------------|
//! | [`Register`] | yes | 1 | 1 |
//! | [`TestAndSet`] | yes | 2 | 1 (Golab) |
//! | [`FetchAndAdd`] | yes | 2 | decider-determined |
//! | [`Swap`] | yes | 2 | decider-determined |
//! | [`BoundedQueue`] / [`BoundedStack`] | no | 2 | ≤ 2 |
//! | [`CompareAndSwap`] | yes | ∞ | ∞ |
//! | [`StickyBit`] / [`ConsensusObject`] / [`MultiConsensus`] | yes | ∞ | ∞ |
//! | [`Tnn`] (`T_{n,n'}`) | iff `n' = n−1` | n (Lemma 15) | n' (Lemma 16) |
//! | [`WithRead`]`<BoundedQueue>` | yes | ∞ (augmented queue) | ∞ |
//! | [`TeamCounter`] | yes | n | n−1 (verified by deciders) |
//! | [`Xn`] | yes | n | n−2 (reconstruction target, see E6) |

mod arithmetic;
mod containers;
mod multi_consensus;
mod register;
mod sticky;
mod test_and_set;
mod tnn;
mod with_read;
mod xn;

pub use arithmetic::{CompareAndSwap, FetchAndAdd, Swap};
pub use containers::{BoundedQueue, BoundedStack};
pub use multi_consensus::MultiConsensus;
pub use register::Register;
pub use sticky::{ConsensusObject, StickyBit};
pub use test_and_set::TestAndSet;
pub use tnn::Tnn;
pub use with_read::WithRead;
pub use xn::{TeamCounter, Xn};
