//! Read/write register over a finite domain.
//!
//! Registers are the "free" objects of both hierarchies: every algorithm in
//! the paper may use registers in addition to objects of the type under
//! study. Their consensus number (and recoverable consensus number) is 1.

use crate::ids::{OpId, Outcome, Response, ValueId};
use crate::object_type::ObjectType;

/// A read/write register over the domain `{0, …, domain-1}`.
///
/// * Values: `0..domain`.
/// * Operations: `write(k)` for each `k` (op ids `0..domain`), then `read`
///   (op id `domain`).
/// * Responses: `0..domain` (read results), plus `domain` (`ack`, returned
///   by writes).
///
/// # Examples
///
/// ```
/// use rcn_spec::{zoo::Register, ObjectType, ValueId};
/// let reg = Register::new(3);
/// let out = reg.apply(ValueId::new(0), reg.write_op(2));
/// assert_eq!(out.next, ValueId::new(2));
/// let out = reg.apply(out.next, reg.read_op().unwrap());
/// assert_eq!(out.response.index(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Register {
    domain: usize,
}

impl Register {
    /// Creates a register over `{0, …, domain-1}`.
    ///
    /// # Panics
    ///
    /// Panics if `domain == 0`.
    pub fn new(domain: usize) -> Self {
        assert!(domain > 0, "register domain must be nonempty");
        Register { domain }
    }

    /// The size of the value domain.
    pub fn domain(&self) -> usize {
        self.domain
    }

    /// The op id of `write(k)`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= domain`.
    pub fn write_op(&self, k: usize) -> OpId {
        assert!(k < self.domain, "write value out of domain");
        OpId(k as u16)
    }
}

impl Default for Register {
    /// A binary register.
    fn default() -> Self {
        Register::new(2)
    }
}

impl ObjectType for Register {
    fn name(&self) -> String {
        format!("register<{}>", self.domain)
    }

    fn num_values(&self) -> usize {
        self.domain
    }

    fn num_ops(&self) -> usize {
        self.domain + 1
    }

    fn num_responses(&self) -> usize {
        self.domain + 1
    }

    fn apply(&self, value: ValueId, op: OpId) -> Outcome {
        let ack = Response(self.domain as u16);
        if op.index() < self.domain {
            // write(k): acknowledge and overwrite.
            Outcome::new(ack, ValueId(op.0))
        } else {
            // read: return the current value, unchanged.
            Outcome::new(Response(value.0), value)
        }
    }

    fn value_name(&self, value: ValueId) -> String {
        format!("{}", value.0)
    }

    fn op_name(&self, op: OpId) -> String {
        if op.index() < self.domain {
            format!("write({})", op.0)
        } else {
            "read".into()
        }
    }

    fn response_name(&self, response: Response) -> String {
        if response.index() < self.domain {
            format!("{}", response.0)
        } else {
            "ack".into()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object_type::check_closed;

    #[test]
    fn register_is_closed_and_readable() {
        let reg = Register::new(4);
        assert!(check_closed(&reg).is_ok());
        assert!(reg.is_readable());
        assert_eq!(reg.read_op(), Some(OpId(4)));
    }

    #[test]
    fn write_overwrites_and_acks() {
        let reg = Register::new(2);
        let out = reg.apply(ValueId(0), reg.write_op(1));
        assert_eq!(out.next, ValueId(1));
        assert_eq!(reg.response_name(out.response), "ack");
    }

    #[test]
    fn read_is_non_mutating_and_injective() {
        let reg = Register::new(3);
        for v in 0..3 {
            let out = reg.apply(ValueId(v), OpId(3));
            assert_eq!(out.next, ValueId(v));
            assert_eq!(out.response, Response(v));
        }
    }

    #[test]
    fn last_write_wins() {
        let reg = Register::new(3);
        let v = reg.apply(ValueId(0), reg.write_op(1)).next;
        let v = reg.apply(v, reg.write_op(2)).next;
        assert_eq!(v, ValueId(2));
    }

    #[test]
    #[should_panic(expected = "write value out of domain")]
    fn write_out_of_domain_panics() {
        Register::new(2).write_op(2);
    }

    #[test]
    fn names_are_human_readable() {
        let reg = Register::new(2);
        assert_eq!(reg.op_name(OpId(0)), "write(0)");
        assert_eq!(reg.op_name(OpId(2)), "read");
        assert_eq!(reg.value_name(ValueId(1)), "1");
    }
}
