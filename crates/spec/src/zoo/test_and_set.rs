//! Test-and-set: the canonical consensus-number-2 type, and Golab's first
//! example of a type whose recoverable consensus number is strictly lower
//! than its consensus number (§1 of the paper).

use crate::ids::{OpId, Outcome, Response, ValueId};
use crate::object_type::ObjectType;

/// A test-and-set bit.
///
/// * Values: `0` (clear), `1` (set).
/// * Operations: `test&set` (op 0) returns the old value and sets the bit;
///   `read` (op 1) returns the current value without changing it.
/// * Responses: `0`, `1`.
///
/// Test-and-set has consensus number 2 (Herlihy) but recoverable consensus
/// number 1 (Golab, SPAA'20): with individual crashes it cannot solve even
/// 2-process recoverable consensus. In decider terms: it is 2-discerning but
/// not 2-recording — experiment E7 checks exactly this.
///
/// # Examples
///
/// ```
/// use rcn_spec::{zoo::TestAndSet, ObjectType, OpId, ValueId};
/// let tas = TestAndSet::new();
/// let first = tas.apply(ValueId::new(0), OpId::new(0));
/// assert_eq!(first.response.index(), 0); // winner sees 0
/// let second = tas.apply(first.next, OpId::new(0));
/// assert_eq!(second.response.index(), 1); // loser sees 1
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TestAndSet;

impl TestAndSet {
    /// Creates a test-and-set bit (initially clear by convention).
    pub fn new() -> Self {
        TestAndSet
    }

    /// The op id of the `test&set` operation.
    pub fn tas_op(&self) -> OpId {
        OpId(0)
    }
}

impl ObjectType for TestAndSet {
    fn name(&self) -> String {
        "test-and-set".into()
    }

    fn num_values(&self) -> usize {
        2
    }

    fn num_ops(&self) -> usize {
        2
    }

    fn num_responses(&self) -> usize {
        2
    }

    fn apply(&self, value: ValueId, op: OpId) -> Outcome {
        match op.index() {
            0 => Outcome::new(Response(value.0), ValueId(1)),
            1 => Outcome::new(Response(value.0), value),
            _ => panic!("test-and-set has 2 operations, got {op}"),
        }
    }

    fn value_name(&self, value: ValueId) -> String {
        match value.index() {
            0 => "clear".into(),
            _ => "set".into(),
        }
    }

    fn op_name(&self, op: OpId) -> String {
        match op.index() {
            0 => "test&set".into(),
            _ => "read".into(),
        }
    }

    fn response_name(&self, response: Response) -> String {
        format!("{}", response.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object_type::check_closed;

    #[test]
    fn tas_is_closed_and_readable() {
        let tas = TestAndSet::new();
        assert!(check_closed(&tas).is_ok());
        assert_eq!(tas.read_op(), Some(OpId(1)));
    }

    #[test]
    fn only_first_tas_wins() {
        let tas = TestAndSet::new();
        let mut v = ValueId(0);
        let mut responses = Vec::new();
        for _ in 0..3 {
            let out = tas.apply(v, tas.tas_op());
            responses.push(out.response.index());
            v = out.next;
        }
        assert_eq!(responses, vec![0, 1, 1]);
        assert_eq!(v, ValueId(1));
    }

    #[test]
    fn tas_op_is_not_a_read() {
        let tas = TestAndSet::new();
        assert!(!tas.is_read_op(tas.tas_op()));
    }

    #[test]
    fn read_observes_without_mutation() {
        let tas = TestAndSet::new();
        let out = tas.apply(ValueId(1), OpId(1));
        assert_eq!(out.response, Response(1));
        assert_eq!(out.next, ValueId(1));
    }
}
