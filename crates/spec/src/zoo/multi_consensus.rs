//! Multi-valued consensus object: the building block of universal
//! constructions.
//!
//! The paper (§1) recalls that recoverable consensus is *universal*: any
//! object can be implemented in a recoverable wait-free manner from objects
//! with high enough recoverable consensus number plus registers
//! (Delporte-Gallet–Fatourou–Fauconnier–Ruppert). The `rcn-universal` crate
//! implements that construction; its per-slot agreement objects are
//! instances of this type.

use crate::ids::{OpId, Outcome, Response, ValueId};
use crate::object_type::ObjectType;

/// A consensus object over the domain `{0, …, domain-1}`.
///
/// * Values: `⊥` (0) and `decided-k` (`k + 1`).
/// * Operations: `propose(k)` for each `k` (op ids `0..domain`), `read`
///   (op id `domain`).
/// * Responses: `0..domain` (the decided value), `⊥` (`domain`, returned
///   only by `read` on an undecided object).
///
/// The first proposal decides permanently; every later operation returns
/// the decided value. Like the binary [`ConsensusObject`], this type is
/// n-recording and readable for every `n`, hence sits at the top of the
/// recoverable hierarchy.
///
/// [`ConsensusObject`]: crate::zoo::ConsensusObject
///
/// # Examples
///
/// ```
/// use rcn_spec::{zoo::MultiConsensus, ObjectType, ValueId};
/// let mc = MultiConsensus::new(3);
/// let first = mc.apply(ValueId::new(0), mc.propose_op(2));
/// assert_eq!(first.response.index(), 2);
/// let later = mc.apply(first.next, mc.propose_op(0));
/// assert_eq!(later.response.index(), 2); // the first proposal won
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiConsensus {
    domain: usize,
}

impl MultiConsensus {
    /// Creates a consensus object over `{0, …, domain-1}` (initially
    /// undecided by convention).
    ///
    /// # Panics
    ///
    /// Panics if `domain == 0`.
    pub fn new(domain: usize) -> Self {
        assert!(domain > 0, "consensus domain must be nonempty");
        MultiConsensus { domain }
    }

    /// The size of the proposal domain.
    pub fn domain(&self) -> usize {
        self.domain
    }

    /// The op id of `propose(k)`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= domain`.
    pub fn propose_op(&self, k: usize) -> OpId {
        assert!(k < self.domain, "proposal out of domain");
        OpId(k as u16)
    }

    /// The op id of `read`.
    pub fn read_op_id(&self) -> OpId {
        OpId(self.domain as u16)
    }

    /// The response meaning "undecided" (returned only by `read`).
    pub fn undecided_response(&self) -> Response {
        Response(self.domain as u16)
    }

    /// Decodes a decided value from a value id, if decided.
    pub fn decided(&self, value: ValueId) -> Option<usize> {
        (value.index() > 0).then(|| value.index() - 1)
    }
}

impl ObjectType for MultiConsensus {
    fn name(&self) -> String {
        format!("consensus<{}>", self.domain)
    }

    fn num_values(&self) -> usize {
        self.domain + 1
    }

    fn num_ops(&self) -> usize {
        self.domain + 1
    }

    fn num_responses(&self) -> usize {
        self.domain + 1
    }

    fn apply(&self, value: ValueId, op: OpId) -> Outcome {
        if op.index() < self.domain {
            // propose(k)
            match self.decided(value) {
                None => Outcome::new(Response(op.0), ValueId(op.0 + 1)),
                Some(w) => Outcome::new(Response(w as u16), value),
            }
        } else {
            // read
            match self.decided(value) {
                None => Outcome::new(self.undecided_response(), value),
                Some(w) => Outcome::new(Response(w as u16), value),
            }
        }
    }

    fn value_name(&self, value: ValueId) -> String {
        match self.decided(value) {
            None => "⊥".into(),
            Some(w) => format!("decided-{w}"),
        }
    }

    fn op_name(&self, op: OpId) -> String {
        if op.index() < self.domain {
            format!("propose({})", op.0)
        } else {
            "read".into()
        }
    }

    fn response_name(&self, response: Response) -> String {
        if response.index() < self.domain {
            format!("{}", response.0)
        } else {
            "⊥".into()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object_type::check_closed;

    #[test]
    fn multi_consensus_is_closed_and_readable() {
        for d in [1, 2, 3, 5] {
            let mc = MultiConsensus::new(d);
            assert!(check_closed(&mc).is_ok(), "domain {d}");
            assert_eq!(mc.read_op(), Some(mc.read_op_id()), "domain {d}");
        }
    }

    #[test]
    fn first_proposal_wins_forever() {
        let mc = MultiConsensus::new(4);
        let mut v = ValueId::new(0);
        v = mc.apply(v, mc.propose_op(3)).next;
        for k in 0..4 {
            let out = mc.apply(v, mc.propose_op(k));
            assert_eq!(out.response, Response(3));
            assert_eq!(out.next, v);
        }
    }

    #[test]
    fn read_distinguishes_undecided() {
        let mc = MultiConsensus::new(2);
        let out = mc.apply(ValueId::new(0), mc.read_op_id());
        assert_eq!(out.response, mc.undecided_response());
        let v = mc.apply(ValueId::new(0), mc.propose_op(1)).next;
        let out = mc.apply(v, mc.read_op_id());
        assert_eq!(out.response, Response(1));
    }

    #[test]
    fn decided_decoding() {
        let mc = MultiConsensus::new(3);
        assert_eq!(mc.decided(ValueId::new(0)), None);
        assert_eq!(mc.decided(ValueId::new(2)), Some(1));
    }

    #[test]
    #[should_panic(expected = "out of domain")]
    fn out_of_domain_proposal_panics() {
        MultiConsensus::new(2).propose_op(2);
    }
}
