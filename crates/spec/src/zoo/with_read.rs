//! [`WithRead`]: augment any deterministic type with a read operation.
//!
//! Readability is *the* hypothesis of the paper's robustness theorem, and
//! this adapter lets the deciders quantify exactly what it buys. The classic
//! example: a FIFO queue has consensus number 2, but an *augmented* queue
//! with a non-destructive read ("peek at everything") has infinite consensus
//! number — the head records the first enqueuer and a read exposes it.
//! With this adapter the decider derives that jump automatically, and the
//! recoverable side too: the augmented queue is n-recording *and* readable,
//! so its recoverable consensus number is also unbounded.

use crate::ids::{OpId, Outcome, Response, ValueId};
use crate::object_type::ObjectType;

/// Augments an inner type with one extra operation: a read that returns the
/// current value and leaves it unchanged.
///
/// Value ids and existing op ids are preserved; the read gets op id
/// `inner.num_ops()`; its responses occupy a fresh block
/// `inner.num_responses() + value`.
///
/// # Examples
///
/// ```
/// use rcn_spec::{zoo::{BoundedQueue, WithRead}, ObjectType};
///
/// let plain = BoundedQueue::new(2, 2);
/// assert!(!plain.is_readable());
/// let augmented = WithRead::new(plain);
/// assert!(augmented.is_readable());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WithRead<T> {
    inner: T,
}

impl<T: ObjectType> WithRead<T> {
    /// Wraps `inner`, adding a read operation.
    pub fn new(inner: T) -> Self {
        WithRead { inner }
    }

    /// The inner type.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// The op id of the added read.
    pub fn added_read_op(&self) -> OpId {
        OpId(self.inner.num_ops() as u16)
    }
}

impl<T: ObjectType> ObjectType for WithRead<T> {
    fn name(&self) -> String {
        format!("{}+read", self.inner.name())
    }

    fn num_values(&self) -> usize {
        self.inner.num_values()
    }

    fn num_ops(&self) -> usize {
        self.inner.num_ops() + 1
    }

    fn num_responses(&self) -> usize {
        self.inner.num_responses() + self.inner.num_values()
    }

    fn apply(&self, value: ValueId, op: OpId) -> Outcome {
        if op.index() < self.inner.num_ops() {
            self.inner.apply(value, op)
        } else {
            let base = self.inner.num_responses() as u16;
            Outcome::new(Response(base + value.0), value)
        }
    }

    fn value_name(&self, value: ValueId) -> String {
        self.inner.value_name(value)
    }

    fn op_name(&self, op: OpId) -> String {
        if op.index() < self.inner.num_ops() {
            self.inner.op_name(op)
        } else {
            "read".into()
        }
    }

    fn response_name(&self, response: Response) -> String {
        if response.index() < self.inner.num_responses() {
            self.inner.response_name(response)
        } else {
            let v = ValueId((response.index() - self.inner.num_responses()) as u16);
            self.inner.value_name(v)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object_type::check_closed;
    use crate::zoo::{BoundedQueue, BoundedStack, TestAndSet};

    #[test]
    fn augmentation_preserves_inner_behaviour() {
        let q = BoundedQueue::new(2, 2);
        let aug = WithRead::new(q.clone());
        assert!(check_closed(&aug).is_ok());
        for v in 0..q.num_values() {
            for op in 0..q.num_ops() {
                assert_eq!(
                    q.apply(ValueId(v as u16), OpId(op as u16)),
                    aug.apply(ValueId(v as u16), OpId(op as u16))
                );
            }
        }
    }

    #[test]
    fn added_read_is_detected_as_a_read() {
        let aug = WithRead::new(BoundedQueue::new(2, 2));
        assert!(aug.is_read_op(aug.added_read_op()));
        assert_eq!(aug.read_op(), Some(aug.added_read_op()));
    }

    #[test]
    fn augmenting_a_readable_type_is_harmless() {
        let aug = WithRead::new(TestAndSet::new());
        assert!(aug.is_readable());
        // The inner read (op 1) is still a read too.
        assert!(aug.is_read_op(OpId(1)));
    }

    #[test]
    fn names_pass_through() {
        let aug = WithRead::new(BoundedStack::new(2, 2));
        assert_eq!(aug.name(), "stack<2,2>+read");
        assert_eq!(aug.op_name(OpId(0)), "push(0)");
        assert_eq!(aug.op_name(aug.added_read_op()), "read");
        assert_eq!(aug.value_name(ValueId(0)), "[]");
    }

    #[test]
    fn read_responses_identify_values() {
        let aug = WithRead::new(BoundedQueue::new(2, 2));
        let mut seen = std::collections::HashSet::new();
        for v in 0..aug.num_values() {
            let out = aug.apply(ValueId(v as u16), aug.added_read_op());
            assert_eq!(out.next, ValueId(v as u16));
            assert!(seen.insert(out.response), "responses must be distinct");
        }
    }
}
