//! Sticky bit and n-consensus objects: types at the top of both hierarchies.

use crate::ids::{OpId, Outcome, Response, ValueId};
use crate::object_type::ObjectType;

/// Plotkin's sticky bit.
///
/// * Values: `⊥` (0), `stuck-0` (1), `stuck-1` (2).
/// * Operations: `write(0)` (op 0), `write(1)` (op 1), `read` (op 2).
/// * Responses: `0`, `1`, `⊥` (2).
///
/// A write to `⊥` sticks the bit and returns the written value; any later
/// write returns the stuck value and has no effect. The sticky bit has
/// infinite consensus number, and — because its single mutation permanently
/// and visibly records the first writer's value — its recording number is
/// also unbounded, so it keeps full power in the recoverable hierarchy.
///
/// # Examples
///
/// ```
/// use rcn_spec::{zoo::StickyBit, ObjectType, OpId, ValueId};
/// let sb = StickyBit::new();
/// let out = sb.apply(ValueId::new(0), OpId::new(1)); // write(1) to ⊥
/// assert_eq!(out.response.index(), 1);
/// let out = sb.apply(out.next, OpId::new(0)); // write(0) loses
/// assert_eq!(out.response.index(), 1); // still answers 1
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StickyBit;

impl StickyBit {
    /// Creates a sticky bit (initial value is `⊥` by convention).
    pub fn new() -> Self {
        StickyBit
    }
}

impl ObjectType for StickyBit {
    fn name(&self) -> String {
        "sticky-bit".into()
    }

    fn num_values(&self) -> usize {
        3
    }

    fn num_ops(&self) -> usize {
        3
    }

    fn num_responses(&self) -> usize {
        3
    }

    fn apply(&self, value: ValueId, op: OpId) -> Outcome {
        match op.index() {
            x @ (0 | 1) => match value.index() {
                0 => Outcome::new(Response(x as u16), ValueId(x as u16 + 1)),
                stuck => Outcome::new(Response(stuck as u16 - 1), value),
            },
            2 => {
                let r = match value.index() {
                    0 => 2, // ⊥
                    stuck => stuck as u16 - 1,
                };
                Outcome::new(Response(r), value)
            }
            _ => panic!("sticky bit has 3 operations, got {op}"),
        }
    }

    fn value_name(&self, value: ValueId) -> String {
        match value.index() {
            0 => "⊥".into(),
            v => format!("stuck-{}", v - 1),
        }
    }

    fn op_name(&self, op: OpId) -> String {
        match op.index() {
            2 => "read".into(),
            x => format!("write({x})"),
        }
    }

    fn response_name(&self, response: Response) -> String {
        match response.index() {
            2 => "⊥".into(),
            r => format!("{r}"),
        }
    }
}

/// A (binary) consensus object: the universal type.
///
/// * Values: `⊥` (0), `decided-0` (1), `decided-1` (2).
/// * Operations: `propose(0)` (op 0), `propose(1)` (op 1), `read` (op 2).
/// * Responses: `0`, `1`, `⊥` (2).
///
/// `propose(x)` decides `x` if the object is undecided and returns the
/// decided value either way. Unlike test-and-set, the decided value is
/// permanently recorded, which is why consensus objects keep infinite power
/// even in the recoverable hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConsensusObject;

impl ConsensusObject {
    /// Creates a consensus object (initially undecided by convention).
    pub fn new() -> Self {
        ConsensusObject
    }

    /// The op id of `propose(x)`.
    ///
    /// # Panics
    ///
    /// Panics if `x > 1`.
    pub fn propose_op(&self, x: usize) -> OpId {
        assert!(x <= 1, "binary consensus proposals are 0 or 1");
        OpId(x as u16)
    }
}

impl ObjectType for ConsensusObject {
    fn name(&self) -> String {
        "consensus-object".into()
    }

    fn num_values(&self) -> usize {
        3
    }

    fn num_ops(&self) -> usize {
        3
    }

    fn num_responses(&self) -> usize {
        3
    }

    fn apply(&self, value: ValueId, op: OpId) -> Outcome {
        match op.index() {
            x @ (0 | 1) => match value.index() {
                0 => Outcome::new(Response(x as u16), ValueId(x as u16 + 1)),
                decided => Outcome::new(Response(decided as u16 - 1), value),
            },
            2 => {
                let r = match value.index() {
                    0 => 2,
                    decided => decided as u16 - 1,
                };
                Outcome::new(Response(r), value)
            }
            _ => panic!("consensus object has 3 operations, got {op}"),
        }
    }

    fn value_name(&self, value: ValueId) -> String {
        match value.index() {
            0 => "⊥".into(),
            v => format!("decided-{}", v - 1),
        }
    }

    fn op_name(&self, op: OpId) -> String {
        match op.index() {
            2 => "read".into(),
            x => format!("propose({x})"),
        }
    }

    fn response_name(&self, response: Response) -> String {
        match response.index() {
            2 => "⊥".into(),
            r => format!("{r}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object_type::check_closed;

    #[test]
    fn sticky_bit_is_closed_and_readable() {
        let sb = StickyBit::new();
        assert!(check_closed(&sb).is_ok());
        assert_eq!(sb.read_op(), Some(OpId(2)));
    }

    #[test]
    fn first_write_sticks() {
        let sb = StickyBit::new();
        let out = sb.apply(ValueId(0), OpId(0));
        assert_eq!(out.next, ValueId(1));
        assert_eq!(out.response, Response(0));
        // Later writes of either value return the stuck value.
        for op in 0..2 {
            let later = sb.apply(out.next, OpId(op));
            assert_eq!(later.next, out.next);
            assert_eq!(later.response, Response(0));
        }
    }

    #[test]
    fn sticky_read_reports_bottom() {
        let sb = StickyBit::new();
        let out = sb.apply(ValueId(0), OpId(2));
        assert_eq!(sb.response_name(out.response), "⊥");
    }

    #[test]
    fn consensus_object_decides_once() {
        let c = ConsensusObject::new();
        assert!(check_closed(&c).is_ok());
        let first = c.apply(ValueId(0), c.propose_op(1));
        assert_eq!(first.response, Response(1));
        let second = c.apply(first.next, c.propose_op(0));
        assert_eq!(second.response, Response(1)); // the earlier decision wins
        assert_eq!(second.next, first.next);
    }

    #[test]
    fn consensus_object_is_readable() {
        assert!(ConsensusObject::new().is_readable());
    }
}
