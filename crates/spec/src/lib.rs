//! # rcn-spec — deterministic sequential object-type specifications
//!
//! This crate is the foundation of the `rcn` workspace, a reproduction of
//! *"Determining Recoverable Consensus Numbers"* (Sean Ovens, PODC 2024).
//! It provides:
//!
//! * the [`ObjectType`] trait — a deterministic sequential specification
//!   exactly in the sense of §2 of the paper: finite values, finite
//!   operations, and a pure `apply(value, op) → (response, value)` function;
//! * [`TableType`] — the explicit-table normal form every finite type can be
//!   converted to, with validation and serde support;
//! * the [`zoo`] — concrete types used in the experiments, including the
//!   paper's `T_{n,n'}` family ([`zoo::Tnn`], §4 of the paper);
//! * [`dot`] — Graphviz export that regenerates Figure 3 of the paper.
//!
//! ## Quickstart
//!
//! ```
//! use rcn_spec::{zoo::Tnn, ObjectType};
//!
//! // Figure 3 of the paper is the state machine of T_{5,2}.
//! let t = Tnn::new(5, 2);
//! assert_eq!(t.num_values(), 10);
//!
//! // The first op_x applied to the initial value records x …
//! let first = t.apply(t.s(), t.op_x(1));
//! assert_eq!(first.response.index(), 1);
//! // … and every one of the next n−1 operations reports it.
//! let second = t.apply(first.next, t.op_x(0));
//! assert_eq!(second.response.index(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ids;
mod object_type;
mod table;

pub mod dot;
pub mod zoo;

pub use ids::{OpId, Outcome, Response, ValueId};
pub use object_type::{apply_all, check_closed, ObjectType};
pub use table::{TableType, TableTypeBuilder, TypeSpecError};
