//! # rcn — Determining Recoverable Consensus Numbers
//!
//! A reproduction of *"Determining Recoverable Consensus Numbers"*
//! (Sean Ovens, PODC 2024): executable specifications of deterministic
//! shared-object types, the crash-recovery execution model, decision
//! procedures for the *n-discerning* and *n-recording* conditions, an
//! exhaustive model checker for recoverable consensus protocols, the
//! paper's §4 algorithms, and a threaded runtime over simulated
//! non-volatile memory.
//!
//! This crate is a thin facade over [`rcn_core`]; see that crate for the
//! layer map and the README for a guided tour.
//!
//! ```
//! use rcn::decide::classify;
//! use rcn::spec::zoo::TestAndSet;
//!
//! // Golab's separation in two lines:
//! let c = classify(&TestAndSet::new(), 4);
//! assert_eq!(c.consensus_number.to_string(), "2");
//! assert_eq!(c.recoverable_consensus_number.to_string(), "1");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rcn_core::*;

pub use rcn_analyze as analyze;
pub use rcn_faults as faults;
pub use rcn_mc as mc;
pub use rcn_obs as obs;
