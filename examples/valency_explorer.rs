//! Valency explorer: mechanizes the paper's §3 proof machinery on a small
//! instance — bivalence of mixed-input initial configurations
//! (Observation 1), a critical execution (Lemma 6), teams (Lemma 7), the
//! common poised object (Lemma 9), and the Observation 11 classification of
//! the critical configuration (the structures behind Figures 1 and 2).
//!
//! Run with: `cargo run --example valency_explorer`

use rcn::model::ProcessId;
use rcn::protocols::TournamentConsensus;
use rcn::spec::zoo::StickyBit;
use rcn::valency::{BudgetedGraph, Valency};
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    // A correct recoverable consensus protocol to dissect: sticky-bit
    // consensus for 2 processes with inputs 0 and 1.
    let sys = TournamentConsensus::try_new(Arc::new(StickyBit::new()), vec![0, 1])?;

    // Explore exactly the crash-budgeted executions E_1*(C) of §3
    // (allowances clamped at 6).
    let graph = BudgetedGraph::explore(&sys, 1, 6, 1_000_000)?;
    println!(
        "explored {} budgeted states (E_{}* with clamp {})",
        graph.len(),
        graph.z(),
        graph.clamp()
    );

    // Observation 1: an initial configuration with both inputs present is
    // bivalent.
    println!("initial valency: {}", graph.initial_valency());
    assert_eq!(graph.initial_valency(), Valency::Bivalent);

    // Lemma 6(a): a critical execution exists.
    let critical = graph
        .find_critical()
        .expect("Lemma 6(a): critical execution exists");
    let info = graph.analyze_critical(critical);
    println!("critical execution α = {}", info.schedule);

    // Lemma 7: both teams are nonempty.
    for (i, team) in info.teams.iter().enumerate() {
        if let Some(v) = team {
            println!(
                "  {} is on team {v} (α·p{i} is {v}-univalent)",
                ProcessId::new(i as u16)
            );
        }
    }

    // Lemma 9: every process is poised to access the same object.
    let object = info.object.expect("Lemma 9: common object");
    let layout = sys.layout();
    println!(
        "  all processes poised on {} : {}",
        layout.name(object),
        layout.object_type(object).name()
    );

    // Observation 11: the critical configuration classifies as n-recording
    // (sticky bits record the first writer permanently), which is exactly
    // how Theorem 13 extracts an n-recording witness from any algorithm.
    let class = info.class.expect("classification exists");
    println!("  critical configuration classifies as: {class}");
    Ok(())
}
