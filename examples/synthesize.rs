//! Type synthesis: search the space of finite readable types for a target
//! hierarchy profile using the deciders as the objective function.
//!
//! This is the machinery that produced the repository's shipped `X_4`
//! reconstruction (readable, consensus number 4, recoverable consensus
//! number 2 — the paper's gap-2 corollary). Here we run a small, fast
//! search for the *test-and-set profile* (readable, CN 2, RCN 1) from
//! random seeds, and then re-verify the shipped `X_4`.
//!
//! Run with: `cargo run --release --example synthesize`

use rcn::decide::classify;
use rcn::decide::synthesis::{hill_climb, random_readable_table, rng, TargetProfile};
use rcn::shipped_xn;

fn main() {
    // A small search: find any readable type with consensus number 2 and
    // recoverable consensus number 1 (test-and-set's profile).
    let profile = TargetProfile {
        readable: true,
        discerning: 2,
        recording: 1,
    };
    println!("searching for profile: readable, discerning=2, recording=1 …");
    for seed in 0..20u64 {
        let mut r = rng(seed);
        let start = random_readable_table(&mut r, 3, 2);
        let out = hill_climb(&mut r, start, profile, 2_000);
        if out.distance == 0 {
            let c = classify(&out.best, 3);
            println!(
                "seed {seed}: found after {} evaluations — CN={}, RCN={}",
                out.evaluations, c.consensus_number, c.recoverable_consensus_number
            );
            break;
        }
        println!(
            "seed {seed}: best distance {} after {} evaluations",
            out.distance, out.evaluations
        );
    }

    // The crown jewel: the shipped X_4, found the same way (seeded from the
    // TeamCounter family) and re-verified from scratch right now.
    println!("\nre-verifying the shipped X_4 reconstruction …");
    let x4 = shipped_xn(4).expect("X_4 ships with rcn-core");
    let c = classify(&x4, 5);
    println!(
        "X_4: readable={}, discerning={}, recording={} ⇒ CN={}, RCN={}",
        c.readable,
        c.discerning.display_level(),
        c.recording.display_level(),
        c.consensus_number,
        c.recoverable_consensus_number
    );
    assert_eq!(c.consensus_number.to_string(), "4");
    assert_eq!(c.recoverable_consensus_number.to_string(), "2");
    println!("the paper's gap-2 corollary, instantiated ✓");
}
