//! Quickstart: classify a type, build a recoverable consensus protocol from
//! its own witnesses, and verify it exhaustively.
//!
//! Run with: `cargo run --example quickstart`

use rcn::decide::classify;
use rcn::spec::zoo::{StickyBit, TestAndSet};
use rcn::{solve_recoverable, verify};
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. Classify: consensus number vs recoverable consensus number.
    //    Test-and-set is the canonical separation (Golab, SPAA'20): it can
    //    solve 2-process consensus, but not 2-process *recoverable*
    //    consensus.
    let tas = classify(&TestAndSet::new(), 4);
    println!(
        "test-and-set : CN = {}, RCN = {}",
        tas.consensus_number, tas.recoverable_consensus_number
    );

    let sticky = classify(&StickyBit::new(), 4);
    println!(
        "sticky bit   : CN = {}, RCN = {}",
        sticky.consensus_number, sticky.recoverable_consensus_number
    );

    // 2. Build: derive a recoverable consensus protocol for 3 processes
    //    from the sticky bit's recording witnesses.
    let sys = solve_recoverable(Arc::new(StickyBit::new()), vec![1, 0, 1])?;
    println!(
        "built {} over {} objects",
        sys.program().name(),
        sys.layout().len()
    );

    // 3. Verify: exhaustive model check — agreement, validity, recoverable
    //    wait-freedom, under every possible crash pattern.
    let verdict = verify(&sys, 5_000_000)?;
    println!("verdict: {verdict}");
    assert!(verdict.is_correct());

    // 4. And the negative side: test-and-set has no witnesses, exactly as
    //    the theory demands.
    match solve_recoverable(Arc::new(TestAndSet::new()), vec![0, 1]) {
        Err(e) => println!("test-and-set cannot: {e}"),
        Ok(_) => unreachable!("Golab's theorem says this cannot happen"),
    }
    Ok(())
}
