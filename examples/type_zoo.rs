//! The type zoo: classify every type in the repository and print the
//! hierarchy comparison table (experiments E5/E8), then render Figure 3
//! (the state machine of T_{5,2}) as Graphviz DOT.
//!
//! Run with: `cargo run --release --example type_zoo`

use rcn::shipped_xn;
use rcn::spec::dot::{to_dot, to_table_text};
use rcn::spec::zoo::{
    BoundedQueue, BoundedStack, CompareAndSwap, ConsensusObject, FetchAndAdd, Register, StickyBit,
    Swap, TeamCounter, TestAndSet, Tnn,
};
use rcn::HierarchyReport;

fn main() {
    let cap = 4;
    let mut report = HierarchyReport::new(cap);
    report.add(&Register::new(2));
    report.add(&TestAndSet::new());
    report.add(&FetchAndAdd::new(4));
    report.add(&Swap::new(2));
    report.add(&CompareAndSwap::new(3));
    report.add(&StickyBit::new());
    report.add(&ConsensusObject::new());
    report.add(&BoundedQueue::new(2, 2));
    report.add(&BoundedStack::new(2, 2));
    report.add(&Tnn::new(4, 2));
    report.add(&Tnn::new(4, 3)); // the readable boundary case n' = n−1
    report.add(&TeamCounter::new(4));
    if let Some(x4) = shipped_xn(4) {
        report.add(&x4);
    }
    println!("{report}");
    println!();

    // Figure 3: the state machine of T_{5,2}.
    let t52 = Tnn::new(5, 2);
    println!("== Figure 3: transition table of T_(5,2) ==");
    println!("{}", to_table_text(&t52));
    println!();
    println!("== Figure 3: Graphviz DOT (pipe into `dot -Tpng`) ==");
    println!("{}", to_dot(&t52, false));
}
