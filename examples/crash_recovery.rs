//! Crash-recovery in action: the paper's §4 algorithms on real threads over
//! simulated non-volatile memory, plus the model-checked counterexamples
//! that separate them.
//!
//! Run with: `cargo run --example crash_recovery`

use rcn::protocols::{TnnRecoverable, TnnWaitFree};
use rcn::runtime::{run_threaded, RunOptions};
use rcn::valency::check_consensus;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // The paper's recoverable algorithm on T_{5,2} with n' = 2 processes:
    // op_R first (observe), then op_x (move). Crashes restart a process at
    // op_R, which is what keeps every process to at most one op_x.
    println!("== T_(5,2) recoverable consensus, 2 threads, heavy crashes ==");
    let mut decided_under_crashes = 0;
    for seed in 0..50 {
        let sys = TnnRecoverable::system(5, 2, vec![1, 0]);
        let report = run_threaded(
            &sys,
            RunOptions {
                seed,
                crash_prob: 0.25,
                max_crashes: 4,
                ..Default::default()
            },
        );
        assert!(report.is_clean_consensus(), "seed {seed}: {report}");
        if report.total_crashes() > 0 {
            decided_under_crashes += 1;
        }
    }
    println!("50/50 runs clean; {decided_under_crashes} of them included real crashes");

    // Exhaustive verification of the same protocol (every interleaving,
    // every crash pattern):
    let sys = TnnRecoverable::system(5, 2, vec![1, 0]);
    let report = check_consensus(&sys, 1_000_000)?;
    println!(
        "model check @ n' = 2: {} ({} configurations)",
        report.verdict, report.configs
    );

    // One process too many (Lemma 16's impossibility half): the checker
    // finds a concrete agreement violation.
    let sys = TnnRecoverable::system(5, 2, vec![0, 1, 1]);
    let report = check_consensus(&sys, 5_000_000)?;
    println!("model check @ n' + 1 = 3: {}", report.verdict);
    assert!(!report.verdict.is_correct());

    // The wait-free algorithm (apply op_x, decide the response) is correct
    // crash-free but breaks as soon as crashes are allowed: a crashed
    // process re-applies op_x and burns the object's counter.
    let sys = TnnWaitFree::system(5, 2, vec![0, 1]);
    let report = check_consensus(&sys, 1_000_000)?;
    println!("wait-free algorithm under crashes: {}", report.verdict);
    assert!(!report.verdict.is_correct());
    Ok(())
}
