//! Universality in action: simulate an arbitrary object — here a bounded
//! FIFO queue — in a recoverable wait-free manner from consensus slots plus
//! registers (the construction the paper's §1 recalls from
//! Delporte-Gallet–Fatourou–Fauconnier–Ruppert), and verify the simulation
//! exhaustively under crashes.
//!
//! Run with: `cargo run --release --example simulate_object`

use rcn::model::{drive, CrashBudget, CrashyAdversary};
use rcn::spec::zoo::BoundedQueue;
use rcn::spec::{ObjectType, ValueId};
use rcn::universal::{verify_simulation, UniversalSim};
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    // Three processes: two enqueue (0 and 1), one dequeues.
    let q = BoundedQueue::new(2, 3);
    let inputs = vec![
        q.enq_op(0).index() as u32,
        q.enq_op(1).index() as u32,
        q.deq_op().index() as u32,
    ];
    let sys = UniversalSim::system(Arc::new(q.clone()), ValueId::new(0), inputs);
    println!(
        "simulating {} for 3 processes via consensus slots",
        q.name()
    );

    // Exhaustive verification: every interleaving, every crash pattern —
    // the decided slots always form a prefix with distinct winners, and
    // every response matches the unique log linearization.
    let report = verify_simulation(&sys, &q, ValueId::new(0), 50_000_000)?;
    println!(
        "exhaustive check: {} configurations, linearizable = {}",
        report.configs,
        report.is_linearizable()
    );
    assert!(report.is_linearizable());

    // A concrete crashy run, narrated.
    let mut adv = CrashyAdversary::new(11, 0.3, CrashBudget::new(1, 3));
    let run = drive(&sys, &mut adv, 10_000);
    println!("crashy run schedule: {}", run.schedule);
    for i in 0..3 {
        let resp = run.config.decided[i].expect("all decide");
        println!(
            "  p{i} applied {} and received response `{}`",
            q.op_name(rcn::spec::OpId::new(sys.inputs()[i] as u16)),
            q.response_name(rcn::spec::Response::new(resp as u16))
        );
    }
    Ok(())
}
